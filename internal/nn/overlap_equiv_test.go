package nn_test

// External test package: the bitwise sync-vs-overlap equivalence suite uses
// the real model zoo (models imports nn, so these tests cannot live in
// package nn).

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// fusionArch is a conv stack whose parameters are all below the fusion
// threshold, so the overlapped path exercises coalescing buckets end to
// end (resnet-tiny exercises the direct in-place buckets).
func fusionArch(size int) *nn.Arch {
	b := nn.NewBuilder("ovseg", nn.Shape{C: 3, H: size, W: size})
	c := b.Conv("c1", b.Last(), 8, dist.ConvGeom{K: 3, S: 1, Pad: 1}, true)
	c = b.BatchNorm("c1_bn", c)
	c = b.ReLU("c1_relu", c)
	c = b.Conv("c2", c, 8, dist.ConvGeom{K: 3, S: 1, Pad: 1}, true)
	c = b.BatchNorm("c2_bn", c)
	c = b.ReLU("c2_relu", c)
	c = b.Conv("c3", c, 12, dist.ConvGeom{K: 3, S: 2, Pad: 1}, true)
	b.Conv("pred", c, 3, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true)
	return b.MustBuild()
}

// trainFinalParams runs `steps` SGD steps of arch on grid g and returns
// every rank's final parameters.
func trainFinalParams(t *testing.T, arch *nn.Arch, g dist.Grid, n, steps int, seg bool, mode nn.GradMode) [][]nn.Param {
	t.Helper()
	in := arch.In
	x := tensor.New(n, in.C, in.H, in.W)
	x.FillRandN(5, 1)
	outShape, _ := arch.Output()
	rng := rand.New(rand.NewSource(6))
	var segLabels []int32
	var clsLabels []int
	if seg {
		segLabels = make([]int32, n*outShape.H*outShape.W)
		for i := range segLabels {
			segLabels[i] = int32(rng.Intn(outShape.C))
		}
	} else {
		clsLabels = make([]int, n)
		for i := range clsLabels {
			clsLabels[i] = rng.Intn(outShape.C)
		}
	}
	params := make([][]nn.Param, g.Size())
	var mu sync.Mutex
	w := comm.NewWorld(g.Size())
	w.Run(func(c *comm.Comm) {
		ctx := core.NewCtx(c, g)
		net, err := nn.NewDistNet(ctx, arch, n, 99)
		if err != nil {
			t.Error(err)
			return
		}
		net.Grad = mode
		xs := net.ScatterInput(x)
		opt := nn.NewSGD(0.05, 0.9, 1e-4)
		for it := 0; it < steps; it++ {
			logits := net.Forward(xs[ctx.Rank])
			var dl core.DistTensor
			if seg {
				shards := nn.ScatterLabels(segLabels, net.OutputDist())
				_, dl = nn.DistSegLoss(ctx, logits, shards[ctx.Rank])
			} else {
				shards := nn.ScatterSampleLabels(clsLabels, net.OutputDist())
				_, dl = nn.DistClsLoss(ctx, logits, shards[ctx.Rank])
			}
			net.Backward(dl)
			opt.Step(net.Params())
		}
		ps := net.Params()
		mu.Lock()
		params[ctx.Rank] = ps
		mu.Unlock()
	})
	return params
}

// The tentpole determinism guarantee: overlapped and synchronous training
// produce bitwise-identical parameters — on 1/2/4-rank sample-parallel
// grids of resnet-tiny and on spatial/hybrid grids with halo exchanges —
// after several full SGD steps.
func TestOverlapBitwiseMatchesSync(t *testing.T) {
	cases := []struct {
		arch *nn.Arch
		g    dist.Grid
		n    int
		seg  bool
	}{
		{models.ResNet50Tiny(16, 10), dist.Grid{PN: 1, PH: 1, PW: 1}, 4, false},
		{models.ResNet50Tiny(16, 10), dist.Grid{PN: 2, PH: 1, PW: 1}, 4, false},
		{models.ResNet50Tiny(16, 10), dist.Grid{PN: 4, PH: 1, PW: 1}, 4, false},
		{fusionArch(8), dist.Grid{PN: 1, PH: 2, PW: 2}, 2, true},
		{fusionArch(8), dist.Grid{PN: 2, PH: 2, PW: 1}, 4, true},
	}
	for i, tc := range cases {
		if raceDetectorOn && (i == 0 || i == 2) {
			continue // trim the slowest resnet cases; see overlap_equiv_race_on_test.go
		}
		syncP := trainFinalParams(t, tc.arch, tc.g, tc.n, 3, tc.seg, nn.GradSync)
		overP := trainFinalParams(t, tc.arch, tc.g, tc.n, 3, tc.seg, nn.GradOverlap)
		for r := range syncP {
			if len(syncP[r]) != len(overP[r]) {
				t.Fatalf("%s %v rank %d: param count %d vs %d", tc.arch.Name, tc.g, r, len(syncP[r]), len(overP[r]))
			}
			for i, sp := range syncP[r] {
				op := overP[r][i]
				for j := range sp.W {
					if math.Float32bits(sp.W[j]) != math.Float32bits(op.W[j]) {
						t.Errorf("%s %v rank %d: %s[%d] sync %v != overlap %v (bitwise)",
							tc.arch.Name, tc.g, r, sp.Name, j, sp.W[j], op.W[j])
						break
					}
				}
			}
		}
	}
}

// Deadlock regression: deferred proxy allreduces in flight while backward
// halo exchanges, batchnorm stats reductions, and pooling reverse
// exchanges run blocking on the compute goroutines of a spatial grid.
func TestOverlapWithHaloExchangesNoDeadlock(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		trainFinalParams(t, fusionArch(8), dist.Grid{PN: 1, PH: 2, PW: 2}, 2, 5, true, nn.GradOverlap)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("deadlock: overlapped training on a spatial grid did not complete")
	}
}

func TestGradSkipLeavesGradientsUnreduced(t *testing.T) {
	// The comm-free ceiling mode must run (benchmarks rely on it) and must
	// NOT equal the synchronous result on a multi-rank grid — if it did,
	// the mode would silently be reducing after all.
	arch := fusionArch(8)
	g := dist.Grid{PN: 2, PH: 1, PW: 1}
	syncP := trainFinalParams(t, arch, g, 4, 1, true, nn.GradSync)
	skipP := trainFinalParams(t, arch, g, 4, 1, true, nn.GradSkip)
	same := true
	for i, sp := range syncP[0] {
		for j := range sp.W {
			if math.Float32bits(sp.W[j]) != math.Float32bits(skipP[0][i].W[j]) {
				same = false
			}
		}
	}
	if same {
		t.Error("GradSkip produced identical parameters to GradSync; ceiling mode is reducing gradients")
	}
}
