package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// checkStrategyMatchesSeq runs an architecture with a per-layer strategy
// and compares loss, parameters after one SGD step, against sequential.
func checkStrategyMatchesSeq(t *testing.T, arch *Arch, grids []dist.Grid, n int) {
	t.Helper()
	p := grids[0].Size()
	seqNet, err := NewSeqNet(arch, 77)
	if err != nil {
		t.Fatal(err)
	}
	in := arch.In
	x := tensor.New(n, in.C, in.H, in.W)
	x.FillRandN(8, 1)
	outShape, _ := arch.Output()
	labels := make([]int32, n*outShape.H*outShape.W)
	rng := rand.New(rand.NewSource(9))
	for i := range labels {
		labels[i] = int32(rng.Intn(outShape.C))
	}

	logitsSeq := seqNet.Forward(x)
	lossSeq, dSeq := SegLoss(logitsSeq, labels)
	seqNet.Backward(dSeq)
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step(seqNet.Params())
	seqParams := seqNet.Params()

	losses := make([]float64, p)
	params := make([][]Param, p)
	var mu sync.Mutex
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		base := core.NewCtx(c, grids[0])
		net, err := NewStrategyNet(base, arch, n, 77, grids)
		if err != nil {
			t.Error(err)
			return
		}
		xs := core.Scatter(x, net.InputDist())
		lbl := ScatterLabels(labels, net.OutputDist())
		logits := net.Forward(xs[base.Rank])
		loss, dl := DistSegLoss(net.OutputCtx(), logits, lbl[base.Rank])
		net.Backward(dl)
		ps := net.Params()
		o := NewSGD(0.1, 0.9, 0)
		o.Step(ps)
		mu.Lock()
		losses[base.Rank] = loss
		params[base.Rank] = ps
		mu.Unlock()
	})

	for r := 0; r < p; r++ {
		if d := math.Abs(losses[r] - lossSeq); d > 1e-4*(math.Abs(lossSeq)+1) {
			t.Errorf("rank %d: loss %g vs sequential %g", r, losses[r], lossSeq)
		}
		for i, pp := range params[r] {
			for j := range pp.W {
				if d := math.Abs(float64(pp.W[j] - seqParams[i].W[j])); d > 2e-3 {
					t.Errorf("rank %d: %s[%d] = %v vs %v", r, pp.Name, j, pp.W[j], seqParams[i].W[j])
					break
				}
			}
		}
	}
}

func TestStrategyNetMixedGridsMatchesSeq(t *testing.T) {
	// Early layers spatial (large domain), late layers sample-parallel:
	// the optimizer's canonical choice, exercising forward and backward
	// shuffles between distributions.
	arch := tinySegArch(16)
	spatial := dist.Grid{PN: 1, PH: 2, PW: 2}
	sample := dist.Grid{PN: 4, PH: 1, PW: 1}
	grids := make([]dist.Grid, len(arch.Specs))
	for i := range grids {
		if i <= 4 { // input + first conv-bn-relu block, plus one
			grids[i] = spatial
		} else {
			grids[i] = sample
		}
	}
	checkStrategyMatchesSeq(t, arch, grids, 4)
}

func TestStrategyNetThreeDistributions(t *testing.T) {
	// Three different grids across the network: spatial 2x2 -> hybrid 2x2x1
	// -> sample, with shuffles at both switches.
	arch := tinySegArch(16)
	g1 := dist.Grid{PN: 1, PH: 2, PW: 2}
	g2 := dist.Grid{PN: 2, PH: 2, PW: 1}
	g3 := dist.Grid{PN: 4, PH: 1, PW: 1}
	grids := make([]dist.Grid, len(arch.Specs))
	for i := range grids {
		switch {
		case i <= 3:
			grids[i] = g1
		case i <= 6:
			grids[i] = g2
		default:
			grids[i] = g3
		}
	}
	checkStrategyMatchesSeq(t, arch, grids, 4)
}

func TestStrategyNetUniformEqualsDistNet(t *testing.T) {
	// A uniform strategy must behave exactly like DistNet.
	arch := tinySegArch(8)
	g := dist.Grid{PN: 2, PH: 2, PW: 1}
	grids := make([]dist.Grid, len(arch.Specs))
	for i := range grids {
		grids[i] = g
	}
	checkStrategyMatchesSeq(t, arch, grids, 4)
}

func TestStrategyNetRejectsBadGrids(t *testing.T) {
	arch := tinySegArch(8)
	grids := make([]dist.Grid, len(arch.Specs)-1) // wrong length
	w := comm.NewWorld(2)
	w.Run(func(c *comm.Comm) {
		base := core.NewCtx(c, dist.Grid{PN: 2, PH: 1, PW: 1})
		if _, err := NewStrategyNet(base, arch, 4, 1, grids); err == nil {
			t.Error("wrong grid count accepted")
		}
	})
}
