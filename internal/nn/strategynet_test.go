package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// checkStrategyMatchesSeq runs an architecture with a per-layer strategy
// and compares loss, parameters after one SGD step, against sequential.
func checkStrategyMatchesSeq(t *testing.T, arch *Arch, grids []dist.Grid, n int) {
	t.Helper()
	p := grids[0].Size()
	seqNet, err := NewSeqNet(arch, 77)
	if err != nil {
		t.Fatal(err)
	}
	in := arch.In
	x := tensor.New(n, in.C, in.H, in.W)
	x.FillRandN(8, 1)
	outShape, _ := arch.Output()
	labels := make([]int32, n*outShape.H*outShape.W)
	rng := rand.New(rand.NewSource(9))
	for i := range labels {
		labels[i] = int32(rng.Intn(outShape.C))
	}

	logitsSeq := seqNet.Forward(x)
	lossSeq, dSeq := SegLoss(logitsSeq, labels)
	seqNet.Backward(dSeq)
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step(seqNet.Params())
	seqParams := seqNet.Params()

	losses := make([]float64, p)
	params := make([][]Param, p)
	var mu sync.Mutex
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		base := core.NewCtx(c, grids[0])
		net, err := NewStrategyNetGrids(base, arch, n, 77, grids)
		if err != nil {
			t.Error(err)
			return
		}
		xs := core.Scatter(x, net.InputDist())
		lbl := ScatterLabels(labels, net.OutputDist())
		logits := net.Forward(xs[base.Rank])
		loss, dl := DistSegLoss(net.OutputCtx(), logits, lbl[base.Rank])
		net.Backward(dl)
		ps := net.Params()
		o := NewSGD(0.1, 0.9, 0)
		o.Step(ps)
		mu.Lock()
		losses[base.Rank] = loss
		params[base.Rank] = ps
		mu.Unlock()
	})

	for r := 0; r < p; r++ {
		if d := math.Abs(losses[r] - lossSeq); d > 1e-4*(math.Abs(lossSeq)+1) {
			t.Errorf("rank %d: loss %g vs sequential %g", r, losses[r], lossSeq)
		}
		for i, pp := range params[r] {
			for j := range pp.W {
				if d := math.Abs(float64(pp.W[j] - seqParams[i].W[j])); d > 2e-3 {
					t.Errorf("rank %d: %s[%d] = %v vs %v", r, pp.Name, j, pp.W[j], seqParams[i].W[j])
					break
				}
			}
		}
	}
}

func TestStrategyNetMixedGridsMatchesSeq(t *testing.T) {
	// Early layers spatial (large domain), late layers sample-parallel:
	// the optimizer's canonical choice, exercising forward and backward
	// shuffles between distributions.
	arch := tinySegArch(16)
	spatial := dist.Grid{PN: 1, PH: 2, PW: 2}
	sample := dist.Grid{PN: 4, PH: 1, PW: 1}
	grids := make([]dist.Grid, len(arch.Specs))
	for i := range grids {
		if i <= 4 { // input + first conv-bn-relu block, plus one
			grids[i] = spatial
		} else {
			grids[i] = sample
		}
	}
	checkStrategyMatchesSeq(t, arch, grids, 4)
}

func TestStrategyNetThreeDistributions(t *testing.T) {
	// Three different grids across the network: spatial 2x2 -> hybrid 2x2x1
	// -> sample, with shuffles at both switches.
	arch := tinySegArch(16)
	g1 := dist.Grid{PN: 1, PH: 2, PW: 2}
	g2 := dist.Grid{PN: 2, PH: 2, PW: 1}
	g3 := dist.Grid{PN: 4, PH: 1, PW: 1}
	grids := make([]dist.Grid, len(arch.Specs))
	for i := range grids {
		switch {
		case i <= 3:
			grids[i] = g1
		case i <= 6:
			grids[i] = g2
		default:
			grids[i] = g3
		}
	}
	checkStrategyMatchesSeq(t, arch, grids, 4)
}

func TestStrategyNetUniformEqualsDistNet(t *testing.T) {
	// A uniform strategy must behave exactly like DistNet.
	arch := tinySegArch(8)
	g := dist.Grid{PN: 2, PH: 2, PW: 1}
	grids := make([]dist.Grid, len(arch.Specs))
	for i := range grids {
		grids[i] = g
	}
	checkStrategyMatchesSeq(t, arch, grids, 4)
}

func TestStrategyNetRejectsBadGrids(t *testing.T) {
	arch := tinySegArch(8)
	grids := make([]dist.Grid, len(arch.Specs)-1) // wrong length
	w := comm.NewWorld(2)
	w.Run(func(c *comm.Comm) {
		base := core.NewCtx(c, dist.Grid{PN: 2, PH: 1, PW: 1})
		if _, err := NewStrategyNetGrids(base, arch, 4, 1, grids); err == nil {
			t.Error("wrong grid count accepted")
		}
	})
}

// placedStrategyRun executes s steps of SGD under the given placements and
// returns the per-step losses plus every rank's final params.
func placedStrategyRun(t *testing.T, arch *Arch, pls []dist.Placement, n, steps int) ([]float64, [][]Param) {
	t.Helper()
	p := pls[0].Grid.Size()
	in := arch.In
	x := tensor.New(n, in.C, in.H, in.W)
	x.FillRandN(8, 1)
	outShape, _ := arch.Output()
	labels := make([]int32, n*outShape.H*outShape.W)
	rng := rand.New(rand.NewSource(9))
	for i := range labels {
		labels[i] = int32(rng.Intn(outShape.C))
	}
	losses := make([]float64, steps)
	params := make([][]Param, p)
	var mu sync.Mutex
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		base := core.NewCtx(c, pls[0].Grid)
		net, err := NewStrategyNet(base, arch, n, 77, pls)
		if err != nil {
			t.Error(err)
			return
		}
		xs := core.Scatter(x, net.InputDist())
		lbl := ScatterLabels(labels, net.OutputDist())
		o := NewSGD(0.1, 0.9, 0)
		for s := 0; s < steps; s++ {
			logits := net.Forward(xs[base.Rank])
			loss, dl := DistSegLoss(net.OutputCtx(), logits, lbl[base.Rank])
			net.Backward(dl)
			o.Step(net.Params())
			if base.Rank == 0 {
				mu.Lock()
				losses[s] = loss
				mu.Unlock()
			}
		}
		ps := net.Params()
		cp := make([]Param, len(ps))
		for i, pp := range ps {
			cp[i] = Param{Name: pp.Name, W: append([]float32(nil), pp.W...), G: append([]float32(nil), pp.G...)}
		}
		mu.Lock()
		params[base.Rank] = cp
		mu.Unlock()
	})
	return losses, params
}

// checkPlacedMatchesSeq trains under placements for several steps and
// requires the loss trajectory to track the sequential net: any gradient
// error in the channel/filter-parallel layers compounds across steps and
// diverges the trajectory.
func checkPlacedMatchesSeq(t *testing.T, arch *Arch, pls []dist.Placement, n, steps int) {
	t.Helper()
	seqNet, err := NewSeqNet(arch, 77)
	if err != nil {
		t.Fatal(err)
	}
	in := arch.In
	x := tensor.New(n, in.C, in.H, in.W)
	x.FillRandN(8, 1)
	outShape, _ := arch.Output()
	labels := make([]int32, n*outShape.H*outShape.W)
	rng := rand.New(rand.NewSource(9))
	for i := range labels {
		labels[i] = int32(rng.Intn(outShape.C))
	}
	opt := NewSGD(0.1, 0.9, 0)
	seqLosses := make([]float64, steps)
	for s := 0; s < steps; s++ {
		logits := seqNet.Forward(x)
		loss, d := SegLoss(logits, labels)
		seqNet.Backward(d)
		opt.Step(seqNet.Params())
		seqLosses[s] = loss
	}
	losses, _ := placedStrategyRun(t, arch, pls, n, steps)
	for s := range losses {
		if d := math.Abs(losses[s] - seqLosses[s]); d > 1e-3*(math.Abs(seqLosses[s])+1) {
			t.Errorf("step %d: placed loss %g vs sequential %g", s, losses[s], seqLosses[s])
		}
	}
}

// placementsFor builds a per-layer placement list: layer indices listed in
// chanLayers get the channel-split placement, everything else base.
func placementsFor(arch *Arch, base, chanPl dist.Placement, chanLayers ...int) []dist.Placement {
	pls := make([]dist.Placement, len(arch.Specs))
	for i := range pls {
		pls[i] = base
	}
	for _, i := range chanLayers {
		pls[i] = chanPl
	}
	return pls
}

func TestStrategyNetChannelParallelMatchesSeq(t *testing.T) {
	// tinySegArch layers: 0 input, 1 c1, 2 bn, 3 relu, 4 c2, 5 bn, 6 relu,
	// 7 pred. The middle block (conv + bn + relu) runs channel-split: the
	// conv splits its input channels, bn/relu hold channel shards; shuffles
	// remap at both boundaries.
	arch := tinySegArch(8)
	base := dist.P(dist.Grid{PN: 4, PH: 1, PW: 1})
	chanPl := dist.Placement{Grid: dist.Grid{PN: 2, PC: 2, PH: 1, PW: 1}, Split: dist.SplitChannel}
	checkPlacedMatchesSeq(t, arch, placementsFor(arch, base, chanPl, 4, 5, 6), 4, 3)
}

func TestStrategyNetFilterParallelMatchesSeq(t *testing.T) {
	arch := tinySegArch(8)
	base := dist.P(dist.Grid{PN: 4, PH: 1, PW: 1})
	filterPl := dist.Placement{Grid: dist.Grid{PN: 1, PC: 4, PH: 1, PW: 1}, Split: dist.SplitFilter}
	checkPlacedMatchesSeq(t, arch, placementsFor(arch, base, filterPl, 4, 5, 6), 4, 3)
}

func TestStrategyNetPureChannelGroupMatchesSeq(t *testing.T) {
	// Whole-network 2-rank channel split except input/pred (which keep the
	// batch whole): composes spatial-free channel parallelism end to end.
	arch := tinySegArch(8)
	base := dist.P(dist.Grid{PN: 2, PH: 1, PW: 1})
	chanPl := dist.Placement{Grid: dist.Grid{PN: 1, PC: 2, PH: 1, PW: 1}, Split: dist.SplitChannel}
	filterPl := dist.Placement{Grid: dist.Grid{PN: 1, PC: 2, PH: 1, PW: 1}, Split: dist.SplitFilter}
	pls := placementsFor(arch, base, chanPl, 4, 5, 6)
	pls[1], pls[2], pls[3] = filterPl, filterPl, filterPl
	checkPlacedMatchesSeq(t, arch, pls, 4, 3)
}

// TestStrategyNetChannelParallelDeterministic: identical channel-parallel
// runs train to bitwise-identical parameters — the stable reductions pin
// every association order, so the placement introduces no run-to-run
// nondeterminism on top of the sample-parallel baseline.
func TestStrategyNetChannelParallelDeterministic(t *testing.T) {
	arch := tinySegArch(8)
	base := dist.P(dist.Grid{PN: 2, PH: 1, PW: 1})
	for _, split := range []dist.Split{dist.SplitChannel, dist.SplitFilter} {
		pl := dist.Placement{Grid: dist.Grid{PN: 1, PC: 2, PH: 1, PW: 1}, Split: split}
		pls := placementsFor(arch, base, pl, 4, 5, 6)
		l1, p1 := placedStrategyRun(t, arch, pls, 4, 2)
		l2, p2 := placedStrategyRun(t, arch, pls, 4, 2)
		for s := range l1 {
			if l1[s] != l2[s] {
				t.Fatalf("split %v: loss[%d] differs across identical runs", split, s)
			}
		}
		for r := range p1 {
			for i := range p1[r] {
				for j := range p1[r][i].W {
					if p1[r][i].W[j] != p2[r][i].W[j] {
						t.Fatalf("split %v rank %d: param %s[%d] differs across identical runs",
							split, r, p1[r][i].Name, j)
					}
				}
			}
		}
	}
}
