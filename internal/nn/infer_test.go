package nn

import (
	"bytes"
	"testing"

	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// servingArch exercises every layer kind the serving path supports:
// conv-bn-relu stem, maxpool, a residual branch with projection, 1x1
// classifier, global average pooling.
func servingArch(size int) *Arch {
	b := NewBuilder("servingtest", Shape{C: 3, H: size, W: size})
	stem := b.ConvBNReLU("stem", b.Last(), 8, dist.ConvGeom{K: 3, S: 1, Pad: 1})
	p := b.MaxPool("pool", stem, dist.ConvGeom{K: 2, S: 2, Pad: 0})
	br := b.Conv("b2a", p, 8, dist.ConvGeom{K: 3, S: 1, Pad: 1}, false)
	br = b.BatchNorm("b2a_bn", br)
	a := b.Add("res", br, p)
	r := b.ReLU("res_relu", a)
	c := b.Conv("cls", r, 4, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true)
	b.GlobalAvgPool("gap", c)
	return b.MustBuild()
}

// trainBriefly runs a few SGD steps so weights and BN running statistics
// move away from their initialization (making missing-buffer bugs visible).
func trainBriefly(t *testing.T, net *SeqNet, n, size int) {
	t.Helper()
	net.SetTrain(true)
	opt := NewSGD(0.05, 0.9, 0)
	params := net.Params()
	x := tensor.New(n, 3, size, size)
	labels := make([]int, n)
	for step := 0; step < 3; step++ {
		x.FillRandN(int64(100+step), 1)
		for i := range labels {
			labels[i] = (i + step) % 4
		}
		y := net.Forward(x)
		logits := y.Reshape(n, 4)
		dlogits := tensor.New(n, 4)
		kernels.SoftmaxCrossEntropy(logits, labels, dlogits)
		net.Backward(dlogits.Reshape(y.Shape()...))
		opt.Step(params)
	}
}

func TestCheckpointRoundTripBitwise(t *testing.T) {
	const size, n = 8, 4
	arch := servingArch(size)
	a, err := NewSeqNet(arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainBriefly(t, a, n, size)

	var buf bytes.Buffer
	if err := SaveState(&buf, arch.Name, a.Params(), a.Buffers()); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh net with different initialization (seed 999), as
	// a fresh process would.
	b, err := NewSeqNet(arch, 999)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadState(bytes.NewReader(buf.Bytes()), arch.Name, b.Params(), b.Buffers()); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(n, 3, size, size)
	x.FillPattern(0.31)
	a.SetTrain(false)
	b.SetTrain(false)
	ya := a.Forward(x)
	yb := b.Forward(x)
	if d := ya.MaxAbsDiff(yb); d != 0 {
		t.Fatalf("restored eval forward differs from original: max abs diff %g, want bitwise identity", d)
	}

	// Restoring the same state twice must be idempotent bit-for-bit.
	c, _ := NewSeqNet(arch, 7)
	if err := LoadState(bytes.NewReader(buf.Bytes()), arch.Name, c.Params(), c.Buffers()); err != nil {
		t.Fatal(err)
	}
	c.SetTrain(false)
	if d := yb.MaxAbsDiff(c.Forward(x)); d != 0 {
		t.Fatalf("second restore not bitwise identical: %g", d)
	}
}

func TestLoadStateRejectsParamsOnlyCheckpoint(t *testing.T) {
	arch := servingArch(8)
	a, _ := NewSeqNet(arch, 1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, arch.Name, a.Params()); err != nil {
		t.Fatal(err)
	}
	b, _ := NewSeqNet(arch, 2)
	err := LoadState(bytes.NewReader(buf.Bytes()), arch.Name, b.Params(), b.Buffers())
	if err == nil {
		t.Fatal("LoadState accepted a checkpoint without running statistics")
	}
}

func TestInferNetMatchesSeqEval(t *testing.T) {
	const size, n = 8, 4
	arch := servingArch(size)
	seq, err := NewSeqNet(arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainBriefly(t, seq, n, size)

	var buf bytes.Buffer
	if err := SaveState(&buf, arch.Name, seq.Params(), seq.Buffers()); err != nil {
		t.Fatal(err)
	}
	inf, err := NewInferNet(arch, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadState(bytes.NewReader(buf.Bytes()), arch.Name, inf.Params(), inf.Buffers()); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(n, 3, size, size)
	x.FillPattern(0.47)
	seq.SetTrain(false)
	want := seq.Forward(x)
	got := inf.Forward(x)
	// The engines lower convolutions differently (per-sample vs batched
	// GEMM), so identity is numerical, not bitwise.
	if d := got.RelDiff(want); d > 1e-5 {
		t.Fatalf("InferNet diverges from eval SeqNet: rel diff %g", d)
	}
}

// Forward must be row-stable across batch sizes: a request's answer may not
// depend on which other requests the batcher packed with it.
func TestInferNetRowStableAcrossBatchSizes(t *testing.T) {
	const size, maxN = 8, 6
	arch := servingArch(size)
	inf, err := NewInferNet(arch, maxN)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(maxN, 3, size, size)
	x.FillPattern(0.13)
	full := inf.Forward(x).Clone()

	out := inf.OutShape()
	plane := out.C * out.H * out.W
	chw := 3 * size * size
	for _, b := range []int{1, 2, 5} {
		sub := tensor.FromSlice(x.Data()[:b*chw], b, 3, size, size)
		y := inf.Forward(sub)
		for i := 0; i < b*plane; i++ {
			if y.Data()[i] != full.Data()[i] {
				t.Fatalf("batch %d row output differs from batch %d at %d", b, maxN, i)
			}
		}
	}
}

func TestInferNetCloneSharesWeights(t *testing.T) {
	arch := servingArch(8)
	a, err := NewInferNet(arch, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Clone()
	if err != nil {
		t.Fatal(err)
	}
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) {
		t.Fatalf("clone has %d params, original %d", len(bp), len(ap))
	}
	// Mutating through one must be visible through the other (shared
	// storage), and both must produce identical outputs.
	ap[0].W[0] = 42
	if bp[0].W[0] != 42 {
		t.Fatal("clone does not share parameter storage")
	}
	x := tensor.New(2, 3, 8, 8)
	x.FillPattern(0.7)
	if d := a.Forward(x).MaxAbsDiff(b.Forward(x)); d != 0 {
		t.Fatalf("clone forward differs: %g", d)
	}
}

func TestInferNetForwardZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items; allocation counts are not meaningful")
	}
	arch := servingArch(8)
	inf, err := NewInferNet(arch, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3, 8, 8)
	x.FillPattern(0.9)
	x1 := tensor.FromSlice(x.Data()[:3*8*8], 1, 3, 8, 8)
	for _, c := range []struct {
		name string
		in   *tensor.Tensor
	}{{"batch4", x}, {"batch1", x1}} {
		inf.Forward(c.in) // warm views and workspace
		if allocs := testing.AllocsPerRun(20, func() { inf.Forward(c.in) }); allocs != 0 {
			t.Errorf("%s: %v allocs per Forward after warm-up, want 0", c.name, allocs)
		}
	}
}

// TestInferNetFusionBitwiseMatchesLegacy is the acceptance test for the
// prepacked/fused serving path: an InferNet built with fusion on (prepacked
// weights, conv+BN+ReLU folded into the GEMM store epilogue) must produce
// bit-for-bit the output of one built with fusion off (pack-on-the-fly
// ConvForwardBatched, batchnorm and ReLU as separate full passes), for every
// batch size. The arch covers all three fusion shapes: conv+BN+ReLU (stem),
// conv+BN whose batchnorm feeds an Add (b2a), and an unfused biased conv
// (cls).
func TestInferNetFusionBitwiseMatchesLegacy(t *testing.T) {
	const size, maxN = 8, 5
	arch := servingArch(size)
	seq, err := NewSeqNet(arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainBriefly(t, seq, maxN, size)
	var buf bytes.Buffer
	if err := SaveState(&buf, arch.Name, seq.Params(), seq.Buffers()); err != nil {
		t.Fatal(err)
	}

	build := func(fusion bool) *InferNet {
		SetInferFusion(fusion)
		defer SetInferFusion(true)
		inf, err := NewInferNet(arch, maxN)
		if err != nil {
			t.Fatal(err)
		}
		if err := LoadState(bytes.NewReader(buf.Bytes()), arch.Name, inf.Params(), inf.Buffers()); err != nil {
			t.Fatal(err)
		}
		return inf
	}
	legacy := build(false)
	fused := build(true)

	for _, b := range []int{1, 3, maxN} {
		x := tensor.New(b, 3, size, size)
		x.FillRandN(int64(b), 1)
		if d := fused.Forward(x).MaxAbsDiff(legacy.Forward(x)); d != 0 {
			t.Fatalf("batch %d: fused forward differs from legacy: max abs diff %g, want bitwise identity", b, d)
		}
	}
}

// TestInferNetRepack: restoring a checkpoint into a net that has already
// served uses stale prepacked weights until Repack; after Repack the output
// is bitwise the restored state's.
func TestInferNetRepack(t *testing.T) {
	const size, n = 8, 2
	arch := servingArch(size)
	seq, err := NewSeqNet(arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainBriefly(t, seq, n, size)
	var buf bytes.Buffer
	if err := SaveState(&buf, arch.Name, seq.Params(), seq.Buffers()); err != nil {
		t.Fatal(err)
	}

	// Reference: a fresh net restored before its first Forward.
	ref, err := NewInferNet(arch, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadState(bytes.NewReader(buf.Bytes()), arch.Name, ref.Params(), ref.Buffers()); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(n, 3, size, size)
	x.FillPattern(0.23)
	want := ref.Forward(x).Clone()

	// A net that served on its He-initialized weights, then restores.
	inf, err := NewInferNet(arch, n)
	if err != nil {
		t.Fatal(err)
	}
	inf.Forward(x) // builds the prepack from the initial weights
	if err := LoadState(bytes.NewReader(buf.Bytes()), arch.Name, inf.Params(), inf.Buffers()); err != nil {
		t.Fatal(err)
	}
	inf.Repack()
	if d := inf.Forward(x).MaxAbsDiff(want); d != 0 {
		t.Fatalf("post-Repack forward differs from fresh restore: %g, want bitwise identity", d)
	}
}
