package nn

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// DistNet executes an architecture across a processor grid using the
// distributed layers of internal/core. Every rank of the grid constructs
// its own DistNet (collectively, in the same order) and runs it SPMD-style.
// The data distribution — hybrid sample/spatial parallelism — is the same
// for every layer, matching the configurations evaluated in Section VI-B
// ("We use the same data decomposition for every layer in a given
// configuration").
type DistNet struct {
	Arch    *Arch
	Ctx     *core.Ctx
	Dists   []dist.Dist // activation distribution per layer
	ShapeOf []Shape
	layers  []distLayer
	outs    []core.DistTensor
	grads   []core.DistTensor

	// Grad selects gradient-reduction scheduling: GradSync (default)
	// blocks inside each layer's backward; GradOverlap hides the
	// reductions behind the remaining backward compute via bucketed
	// non-blocking allreduces. Both produce bitwise-identical gradients
	// (the reductions are rank-order stable).
	Grad GradMode
	plan *gradPlan
}

// NewDistNet instantiates the architecture for this rank on grid ctx.Grid
// with a global batch size of n. Weight initialization matches NewSeqNet
// given the same seed, so a distributed run is directly comparable to a
// sequential one.
func NewDistNet(ctx *core.Ctx, arch *Arch, n int, seed int64) (*DistNet, error) {
	shapes, err := arch.Shapes()
	if err != nil {
		return nil, err
	}
	net := &DistNet{Arch: arch, Ctx: ctx, ShapeOf: shapes}
	net.Dists = make([]dist.Dist, len(arch.Specs))
	for i, s := range arch.Specs {
		sh := shapes[i]
		d := dist.Dist{Grid: ctx.Grid, N: n, C: sh.C, H: sh.H, W: sh.W}
		if s.Kind == KindGlobalAvgPool {
			// Replicated within the spatial group; see core.GlobalAvgPool.
			d.H, d.W = ctx.Grid.PH, ctx.Grid.PW
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %v", i, s.Name, err)
		}
		net.Dists[i] = d
	}
	for i, s := range arch.Specs {
		var inD dist.Dist
		var inShape Shape
		if len(s.Parents) > 0 {
			inD = net.Dists[s.Parents[0]]
			inShape = shapes[s.Parents[0]]
		}
		switch s.Kind {
		case KindInput:
			net.layers = append(net.layers, &distInput{})
		case KindConv:
			l := core.NewConv(ctx, inD, s.F, s.Geom, s.Bias)
			// Match the sequential He initialization exactly: the RNG stream
			// depends only on (seed, layer index, fan-in), all replicated.
			fanIn := inShape.C * s.Geom.K * s.Geom.K
			l.W.FillRandN(seed+int64(i), heStd(fanIn))
			net.layers = append(net.layers, &distConv{l: l})
		case KindBatchNorm:
			net.layers = append(net.layers, &distBN{l: core.NewBatchNorm(ctx, inD, core.BatchNormGlobal)})
		case KindReLU:
			net.layers = append(net.layers, &distReLU{l: core.NewReLU(inD)})
		case KindMaxPool:
			net.layers = append(net.layers, &distMaxPool{l: core.NewMaxPool(ctx, inD, s.Geom)})
		case KindGlobalAvgPool:
			net.layers = append(net.layers, &distGAP{l: core.NewGlobalAvgPool(ctx, inD)})
		case KindAdd:
			net.layers = append(net.layers, &distAdd{l: core.NewAdd(net.Dists[i])})
		default:
			return nil, fmt.Errorf("nn: unsupported kind %v in distributed net", s.Kind)
		}
	}
	return net, nil
}

// InputDist returns the distribution the input must arrive in.
func (n *DistNet) InputDist() dist.Dist { return n.Dists[0] }

// OutputDist returns the final layer's distribution.
func (n *DistNet) OutputDist() dist.Dist { return n.Dists[len(n.Dists)-1] }

// Forward runs the DAG on this rank's shard.
func (n *DistNet) Forward(x core.DistTensor) core.DistTensor {
	n.outs = make([]core.DistTensor, len(n.layers))
	for i, l := range n.layers {
		parents := n.Arch.Specs[i].Parents
		ins := make([]core.DistTensor, len(parents))
		for j, p := range parents {
			ins[j] = n.outs[p]
		}
		if n.Arch.Specs[i].Kind == KindInput {
			ins = []core.DistTensor{x}
		}
		n.outs[i] = l.forward(n.Ctx, ins)
	}
	return n.outs[len(n.outs)-1]
}

// Backward propagates the loss gradient; parameter gradients are complete
// (allreduced) on return. Under GradOverlap the per-layer reductions run
// as non-blocking collectives concurrently with the shallower layers'
// backward kernels and are drained before returning, so callers see the
// same contract either way.
func (n *DistNet) Backward(dLast core.DistTensor) core.DistTensor {
	overlap := n.Grad != GradSync && n.Ctx.C.Size() > 1
	for _, l := range n.layers {
		if d, ok := l.(deferrable); ok {
			d.setDeferAllreduce(overlap)
		}
	}
	if overlap && n.Grad == GradOverlap && n.plan == nil {
		n.plan = buildGradPlan(n.layers)
	}
	n.grads = make([]core.DistTensor, len(n.layers))
	n.grads[len(n.layers)-1] = dLast
	var dIn core.DistTensor
	for i := len(n.layers) - 1; i >= 0; i-- {
		g := n.grads[i]
		if g.Local == nil {
			g = core.NewDistTensor(n.Dists[i], n.Ctx.Rank)
		}
		parentGrads := n.layers[i].backward(n.Ctx, g)
		if overlap && n.Grad == GradOverlap {
			n.plan.launch(n.Ctx, i)
		}
		for j, p := range n.Arch.Specs[i].Parents {
			if n.grads[p].Local == nil {
				n.grads[p] = parentGrads[j]
			} else {
				n.grads[p].Local.AddScaled(parentGrads[j].Local, 1)
			}
		}
		if n.Arch.Specs[i].Kind == KindInput {
			dIn = g
		}
	}
	if overlap && n.Grad == GradOverlap {
		n.plan.drain()
	}
	return dIn
}

// Params returns the replicated learnable parameters (identical across
// ranks; gradients are identical after the backward allreduces, so
// independent SGD keeps replicas in lockstep — Section III-A).
func (n *DistNet) Params() []Param {
	var ps []Param
	for i, l := range n.layers {
		ps = append(ps, l.params(n.Arch.Specs[i].Name)...)
	}
	return ps
}

// heStd is the He-initialization standard deviation sqrt(2/fanIn); it must
// match newSeqConv so sequential and distributed nets start identically.
func heStd(fanIn int) float32 {
	return float32(math.Sqrt(2.0 / float64(fanIn)))
}

type distLayer interface {
	forward(ctx *core.Ctx, ins []core.DistTensor) core.DistTensor
	backward(ctx *core.Ctx, dy core.DistTensor) []core.DistTensor
	params(name string) []Param
}

type distInput struct{}

func (l *distInput) forward(_ *core.Ctx, ins []core.DistTensor) core.DistTensor { return ins[0] }
func (l *distInput) backward(_ *core.Ctx, dy core.DistTensor) []core.DistTensor { return nil }
func (l *distInput) params(string) []Param                                      { return nil }

type distConv struct{ l *core.Conv }

func (d *distConv) forward(ctx *core.Ctx, ins []core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *distConv) backward(ctx *core.Ctx, dy core.DistTensor) []core.DistTensor {
	return []core.DistTensor{d.l.Backward(ctx, dy)}
}

func (d *distConv) params(name string) []Param {
	ps := []Param{{Name: name + ".w", W: d.l.W.Data(), G: d.l.DW.Data()}}
	if d.l.Bias != nil {
		ps = append(ps, Param{Name: name + ".b", W: d.l.Bias, G: d.l.DBias})
	}
	return ps
}

func (d *distConv) setDeferAllreduce(on bool) { d.l.DeferAllreduce = on }

func (d *distConv) deferredGrads() [][]float32 {
	gs := [][]float32{d.l.DW.Data()}
	if d.l.DBias != nil {
		gs = append(gs, d.l.DBias)
	}
	return gs
}

type distBN struct{ l *core.BatchNorm }

func (d *distBN) forward(ctx *core.Ctx, ins []core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *distBN) backward(ctx *core.Ctx, dy core.DistTensor) []core.DistTensor {
	return []core.DistTensor{d.l.Backward(ctx, dy)}
}

func (d *distBN) params(name string) []Param {
	return []Param{
		{Name: name + ".gamma", W: d.l.Gamma, G: d.l.DGamma},
		{Name: name + ".beta", W: d.l.Beta, G: d.l.DBeta},
	}
}

// Batch normalization's gradient reduction rides the backward-stats
// allreduce that the data gradient needs anyway (see core.BatchNorm), so
// there is nothing for the overlap engine to defer: DGamma/DBeta are
// already globally complete when backward returns.
func (d *distBN) setDeferAllreduce(bool) {}

func (d *distBN) deferredGrads() [][]float32 { return nil }

type distReLU struct{ l *core.ReLU }

func (d *distReLU) forward(ctx *core.Ctx, ins []core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *distReLU) backward(ctx *core.Ctx, dy core.DistTensor) []core.DistTensor {
	return []core.DistTensor{d.l.Backward(ctx, dy)}
}

func (d *distReLU) params(string) []Param { return nil }

type distMaxPool struct{ l *core.MaxPool }

func (d *distMaxPool) forward(ctx *core.Ctx, ins []core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *distMaxPool) backward(ctx *core.Ctx, dy core.DistTensor) []core.DistTensor {
	return []core.DistTensor{d.l.Backward(ctx, dy)}
}

func (d *distMaxPool) params(string) []Param { return nil }

type distGAP struct{ l *core.GlobalAvgPool }

func (d *distGAP) forward(ctx *core.Ctx, ins []core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *distGAP) backward(ctx *core.Ctx, dy core.DistTensor) []core.DistTensor {
	return []core.DistTensor{d.l.Backward(ctx, dy)}
}

func (d *distGAP) params(string) []Param { return nil }

type distAdd struct{ l *core.Add }

func (d *distAdd) forward(ctx *core.Ctx, ins []core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0], ins[1])
}

func (d *distAdd) backward(ctx *core.Ctx, dy core.DistTensor) []core.DistTensor {
	a, b := d.l.Backward(ctx, dy)
	return []core.DistTensor{a, b}
}

func (d *distAdd) params(string) []Param { return nil }

// ScatterInput splits a global input batch into this architecture's input
// distribution (test and data-loading helper; rank r takes shards[r]).
func (n *DistNet) ScatterInput(global *tensor.Tensor) []core.DistTensor {
	return core.Scatter(global, n.InputDist())
}
