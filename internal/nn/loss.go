package nn

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// SegLoss computes the mean per-pixel softmax cross-entropy of logits
// [N, Classes, H, W] against a flattened [N, H, W] label map, returning the
// loss and the logits gradient (sequential reference).
func SegLoss(logits *tensor.Tensor, labels []int32) (float64, *tensor.Tensor) {
	d := tensor.New(logits.Shape()...)
	loss := kernels.SoftmaxCrossEntropySpatial(logits, labels, d)
	return loss, d
}

// ClsLoss computes the mean softmax cross-entropy of per-sample logits
// (shape [N, Classes] or [N, Classes, 1, 1]) against integer labels.
func ClsLoss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	flat := logits
	s := logits.Shape()
	if len(s) == 4 {
		flat = logits.Reshape(s[0], s[1]*s[2]*s[3])
	}
	d := tensor.New(flat.Shape()...)
	loss := kernels.SoftmaxCrossEntropy(flat, labels, d)
	return loss, d.Reshape(s...)
}

// ScatterLabels splits a global [N, H, W] label map into per-rank shards
// matching distribution d (channel count ignored).
func ScatterLabels(labels []int32, d dist.Dist) [][]int32 {
	if len(labels) != d.N*d.H*d.W {
		panic(fmt.Sprintf("nn: %d labels for %dx%dx%d map", len(labels), d.N, d.H, d.W))
	}
	out := make([][]int32, d.Grid.Size())
	for r := range out {
		rn, rh, rw := d.RangeN(r), d.RangeH(r), d.RangeW(r)
		shard := make([]int32, rn.Len()*rh.Len()*rw.Len())
		k := 0
		for n := rn.Lo; n < rn.Hi; n++ {
			for h := rh.Lo; h < rh.Hi; h++ {
				for w := rw.Lo; w < rw.Hi; w++ {
					shard[k] = labels[(n*d.H+h)*d.W+w]
					k++
				}
			}
		}
		out[r] = shard
	}
	return out
}

// DistSegLoss computes the global mean per-pixel cross-entropy from local
// logits and local labels. The local gradient is normalized by the global
// pixel count, so the distributed backward pass exactly matches the
// sequential one; the returned loss is the global mean (identical on every
// rank after an allreduce).
func DistSegLoss(ctx *core.Ctx, logits core.DistTensor, labels []int32) (float64, core.DistTensor) {
	ls := logits.Local.Shape()
	localCnt := ls[0] * ls[2] * ls[3]
	globalCnt := logits.Dist.N * logits.Dist.H * logits.Dist.W
	d := core.NewDistTensor(logits.Dist, ctx.Rank)
	localMean := kernels.SoftmaxCrossEntropySpatial(logits.Local, labels, d.Local)
	// Rescale the gradient from local-mean to global-mean normalization.
	scale := float32(localCnt) / float32(globalCnt)
	d.Local.Scale(scale)
	// Global loss: sum of local sums / global count.
	buf := []float32{float32(localMean * float64(localCnt) / float64(globalCnt))}
	if ctx.C.Size() > 1 {
		ctx.C.Allreduce(buf, comm.OpSum)
	}
	return float64(buf[0]), d
}

// DistClsLoss computes the global mean cross-entropy for classification
// logits produced by a GlobalAvgPool head: each rank holds replicated
// [nLoc, Classes, 1, 1] logits for its sample group's samples, and labels
// are this rank's local sample labels. The gradient is normalized by the
// global batch size; the loss is the global mean.
func DistClsLoss(ctx *core.Ctx, logits core.DistTensor, labels []int) (float64, core.DistTensor) {
	ls := logits.Local.Shape()
	nLoc := ls[0]
	if len(labels) != nLoc {
		panic(fmt.Sprintf("nn: %d labels for %d local samples", len(labels), nLoc))
	}
	globalN := logits.Dist.N
	flat := logits.Local.Reshape(nLoc, ls[1]*ls[2]*ls[3])
	d := core.NewDistTensor(logits.Dist, ctx.Rank)
	dFlat := d.Local.Reshape(nLoc, ls[1]*ls[2]*ls[3])
	localMean := kernels.SoftmaxCrossEntropy(flat, labels, dFlat)
	d.Local.Scale(float32(nLoc) / float32(globalN))
	// Sum across sample groups only: every rank of a spatial group holds
	// the same samples, so divide the world sum by the spatial ways.
	buf := []float32{float32(localMean * float64(nLoc) / float64(globalN))}
	if ctx.C.Size() > 1 {
		ctx.C.Allreduce(buf, comm.OpSum)
	}
	return float64(buf[0]) / float64(ctx.Grid.SpatialWays()), d
}

// ScatterSampleLabels splits per-sample labels by the N partition of d;
// every rank of a spatial group receives the same labels.
func ScatterSampleLabels(labels []int, d dist.Dist) [][]int {
	out := make([][]int, d.Grid.Size())
	for r := range out {
		rn := d.RangeN(r)
		out[r] = append([]int(nil), labels[rn.Lo:rn.Hi]...)
	}
	return out
}
