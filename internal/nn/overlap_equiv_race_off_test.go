//go:build !race

package nn_test

const raceDetectorOn = false
