package nn

import (
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// DistInferNet is the distributed counterpart of InferNet: a forward-only
// execution engine whose layers are placement-sharded over a group of comm
// ranks, built on core's inference constructors — the "model too big for
// one device" serving path. Each rank of the group holds one channel/filter
// shard of every layer (grid {PN:1, PC:p, PH:1, PW:1}); convolutions choose
// the channel- or filter-parallel formulation of Section III-D per layer
// via Placement.Split, and activation collectives use the rank-order-stable
// ring family, so answers are bitwise deterministic under dynamic batching.
//
// Under the filter split every rank gathers the complete input channels and
// computes complete weight rows with the batched row-stable kernel, so the
// assembled output is bitwise identical to an unsharded InferNet on the
// same weights — the property the serving fleet's mixed sharded/unsharded
// replica sets rely on. The channel split reassociates the channel sum
// across blocks (deterministic, but not bitwise equal across decompositions).
//
// All activation storage is preallocated at construction and every forward
// runs at the fixed capacity batch (per-sample independence of the batched
// kernels makes live rows bitwise independent of the padding), so a warm
// Forward performs no heap allocations. Like InferNet, a DistInferNet is
// not safe for concurrent Forward calls; it is one replica.
type DistInferNet struct {
	Arch       *Arch
	ShapeOf    []Shape
	Placements []dist.Placement

	ctx    *core.Ctx
	maxN   int
	layers []distInferLayer
	dists  []dist.Dist
	cur    []core.DistTensor

	in      core.DistTensor // input shard, refilled each Forward
	inRange dist.Range      // this rank's input-channel block

	// Leader-side output assembly (allocated on every rank; only rank 0's
	// is filled — the memory is small, one output tensor).
	outFull   *tensor.Tensor
	outViews  []*tensor.Tensor
	outBlocks []dist.Range
	tag       int

	// Persistent region scratch so warm extracts/inserts allocate nothing.
	sOff, sSize, dOff, dSize [4]int

	staging *tensor.Tensor // lazily allocated replicated-input buffer

	trace   *obs.Ring // this rank's flight-recorder track; nil = no hooks
	traceID uint64    // correlation id stamped on spans (serving batch seq)
}

// SetTrace attaches this rank's flight-recorder ring: Forward then emits
// per-layer and gather spans on it when tracing is enabled. Nil detaches.
func (n *DistInferNet) SetTrace(r *obs.Ring) { n.trace = r }

// SetTraceID sets the correlation id stamped on subsequent spans; the
// serving leader broadcasts the batch seq so every shard rank tags alike.
func (n *DistInferNet) SetTraceID(id uint64) { n.traceID = id }

// StagingInput returns a preallocated [MaxBatch, C, H, W] tensor suitable
// as the Forward input: callers (the serving replica loop) copy live rows
// into its prefix and pass it collectively. It starts zeroed, so padding
// rows are always finite. One buffer per net, reused across batches.
func (n *DistInferNet) StagingInput() *tensor.Tensor {
	if n.staging == nil {
		in := n.Arch.In
		n.staging = tensor.New(n.maxN, in.C, in.H, in.W)
	}
	return n.staging
}

// ShardedPlacements builds the uniform per-layer placement list a serving
// replica group uses: every layer on the {PN:1, PC:p, PH:1, PW:1} grid,
// convolutions partitioned on the given weight dimension. Use
// dist.SplitFilter when the sharded replica must answer bitwise identically
// to an unsharded one.
func ShardedPlacements(arch *Arch, p int, split dist.Split) []dist.Placement {
	g := dist.Grid{PN: 1, PC: p, PH: 1, PW: 1}
	out := make([]dist.Placement, len(arch.Specs))
	for i, s := range arch.Specs {
		out[i] = dist.Placement{Grid: g}
		if s.Kind == KindConv {
			out[i].Split = split
		}
		out[i] = out[i].Norm()
	}
	return out
}

// NewDistInferNet instantiates the forward-only sharded engine for this
// rank. It must be called collectively by every rank of c; placements has
// one entry per spec, all on the same {PN:1, PC:c.Size(), PH:1, PW:1} grid.
// Weights start He-initialized with the same per-layer seeds NewInferNet
// uses (each rank holding its slice of the identical full tensor); restore
// real ones collectively with LoadState/LoadCheckpoint.
func NewDistInferNet(c *comm.Comm, arch *Arch, maxBatch int, placements []dist.Placement) (*DistInferNet, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("nn: dist infer net needs maxBatch >= 1, got %d", maxBatch)
	}
	if len(placements) != len(arch.Specs) {
		return nil, fmt.Errorf("nn: %d placements for %d layers", len(placements), len(arch.Specs))
	}
	shapes, err := arch.Shapes()
	if err != nil {
		return nil, err
	}
	p := c.Size()
	grid := dist.Grid{PN: 1, PC: p, PH: 1, PW: 1}.Norm()
	for i, pl := range placements {
		pl = pl.Norm()
		if pl.Grid != grid {
			return nil, fmt.Errorf("nn: layer %d (%s): placement grid %v, want %v (one channel group per replica)",
				i, arch.Specs[i].Name, pl.Grid, grid)
		}
		if arch.Specs[i].Kind == KindConv && p > 1 && pl.Split == dist.SplitNone {
			return nil, fmt.Errorf("nn: layer %d (%s): sharded replica requires SplitChannel or SplitFilter", i, arch.Specs[i].Name)
		}
	}
	ctx := core.NewCtx(c, grid)
	n := &DistInferNet{
		Arch:       arch,
		ShapeOf:    shapes,
		Placements: placements,
		ctx:        ctx,
		maxN:       maxBatch,
		layers:     make([]distInferLayer, len(arch.Specs)),
		dists:      make([]dist.Dist, len(arch.Specs)),
		cur:        make([]core.DistTensor, len(arch.Specs)),
	}
	for i, sh := range shapes {
		n.dists[i] = dist.Dist{Grid: grid, N: maxBatch, C: sh.C, H: sh.H, W: sh.W}
		if err := n.dists[i].Validate(); err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %v", i, arch.Specs[i].Name, err)
		}
	}
	for i, s := range arch.Specs {
		var inD dist.Dist
		var inShape Shape
		if len(s.Parents) > 0 {
			inShape = shapes[s.Parents[0]]
			inD = n.dists[s.Parents[0]]
		}
		switch s.Kind {
		case KindInput:
			n.in = core.NewDistTensor(n.dists[0], ctx.Rank)
			n.inRange = n.dists[0].RangeC(ctx.Rank)
		case KindConv:
			fanIn := inShape.C * s.Geom.K * s.Geom.K
			switch placements[i].Norm().Split {
			case dist.SplitChannel:
				l := core.NewChannelParallelConvInference(ctx, inD, s.F, s.Geom, s.Bias)
				loadWeightSlice(l.W, s.F, inShape.C, s.Geom.K, int64(i), fanIn,
					dist.Range{Lo: 0, Hi: s.F}, l.CRange)
				n.layers[i] = &diChanConv{l: l, f: s.F, c: inShape.C, k: s.Geom.K}
			default: // SplitFilter, and SplitNone on a 1-rank group
				l := core.NewFilterParallelConvInference(ctx, inD, s.F, s.Geom, s.Bias)
				loadWeightSlice(l.W, s.F, inShape.C, s.Geom.K, int64(i), fanIn,
					l.FRange, dist.Range{Lo: 0, Hi: inShape.C})
				n.layers[i] = &diFilterConv{l: l, f: s.F, c: inShape.C, k: s.Geom.K}
			}
		case KindBatchNorm:
			n.layers[i] = &diBN{l: core.NewBatchNormInference(ctx, inD), cr: inD.RangeC(ctx.Rank), c: inShape.C}
		case KindReLU:
			n.layers[i] = &diReLU{out: core.NewDistTensor(n.dists[i], ctx.Rank)}
		case KindMaxPool:
			n.layers[i] = &diMaxPool{spec: s, out: core.NewDistTensor(n.dists[i], ctx.Rank)}
		case KindGlobalAvgPool:
			n.layers[i] = &diGAP{out: core.NewDistTensor(n.dists[i], ctx.Rank)}
		case KindAdd:
			n.layers[i] = &diAdd{out: core.NewDistTensor(n.dists[i], ctx.Rank)}
		default:
			return nil, fmt.Errorf("nn: unsupported kind %v in dist infer net", s.Kind)
		}
	}
	out := shapes[len(shapes)-1]
	n.outFull = tensor.New(maxBatch, out.C, out.H, out.W)
	n.outViews = make([]*tensor.Tensor, maxBatch+1)
	n.outViews[maxBatch] = n.outFull
	n.outBlocks = make([]dist.Range, p)
	for q := range n.outBlocks {
		n.outBlocks[q] = n.dists[len(n.dists)-1].RangeC(q)
	}
	n.tag = ctx.AllocTags(1)
	return n, nil
}

// MaxBatch returns the fixed capacity every Forward runs at.
func (n *DistInferNet) MaxBatch() int { return n.maxN }

// Ranks returns the number of ranks this replica is sharded over.
func (n *DistInferNet) Ranks() int { return n.ctx.C.Size() }

// IsLeader reports whether this rank assembles (and returns) the output.
func (n *DistInferNet) IsLeader() bool { return n.ctx.Rank == 0 }

// InShape returns the per-sample input shape.
func (n *DistInferNet) InShape() Shape { return n.Arch.In }

// OutShape returns the per-sample output shape.
func (n *DistInferNet) OutShape() Shape { return n.ShapeOf[len(n.ShapeOf)-1] }

// Forward runs the sharded DAG. It must be called collectively by every
// rank of the group with a bitwise-identical x of shape
// [MaxBatch, C, H, W] whose first live rows carry the batch (rows past live
// may hold anything: every kernel on the path is row-independent, so live
// outputs never see them). The leader returns the assembled [live, ...]
// output, valid until the next Forward; other ranks return nil.
func (n *DistInferNet) Forward(x *tensor.Tensor, live int) *tensor.Tensor {
	xs := x.Shape()
	in := n.Arch.In
	if len(xs) != 4 || xs[0] != n.maxN || xs[1] != in.C || xs[2] != in.H || xs[3] != in.W {
		panic(fmt.Sprintf("nn: dist infer input shape %v, want [%d %d %d %d]", xs, n.maxN, in.C, in.H, in.W))
	}
	if live < 1 || live > n.maxN {
		panic(fmt.Sprintf("nn: dist infer live rows %d outside [1, %d]", live, n.maxN))
	}
	// Slice this rank's input-channel block out of the replicated input.
	n.sOff = [4]int{0, n.inRange.Lo, 0, 0}
	n.sSize = [4]int{n.maxN, n.inRange.Len(), in.H, in.W}
	x.ExtractRegionInto(tensor.Region{Off: n.sOff[:], Size: n.sSize[:]}, n.in.Local.Data())
	n.cur[0] = n.in

	var ins [2]core.DistTensor
	for i := 1; i < len(n.layers); i++ {
		for j, p := range n.Arch.Specs[i].Parents {
			ins[j] = n.cur[p]
		}
		if n.trace != nil {
			t := obs.Start()
			n.cur[i] = n.layers[i].forward(n.ctx, ins)
			n.trace.Record(layerStage(n.Arch.Specs[i].Kind), 0, n.traceID, t, int64(i))
		} else {
			n.cur[i] = n.layers[i].forward(n.ctx, ins)
		}
	}
	var t int64
	if n.trace != nil {
		t = obs.Start()
	}
	out := n.gatherOutput(n.cur[len(n.cur)-1], live)
	n.trace.Record(obs.StageGather, 0, n.traceID, t, 0)
	return out
}

// gatherOutput assembles the channel-partitioned final shard on the leader:
// every other rank sends the live rows of its block, the leader inserts
// them (and its own) into the full output. Payloads stage through the comm
// pool, so a warm gather allocates nothing.
func (n *DistInferNet) gatherOutput(y core.DistTensor, live int) *tensor.Tensor {
	c := n.ctx.C
	me := c.Rank()
	out := n.OutShape()
	myBlk := n.outBlocks[me]
	n.sOff = [4]int{0, 0, 0, 0}
	n.sSize = [4]int{live, myBlk.Len(), out.H, out.W}
	if me != 0 {
		buf := comm.GetBuf(live * myBlk.Len() * out.H * out.W)
		y.Local.ExtractRegionInto(tensor.Region{Off: n.sOff[:], Size: n.sSize[:]}, buf)
		c.SendNoCopy(0, n.tag, buf)
		return nil
	}
	n.dOff = [4]int{0, myBlk.Lo, 0, 0}
	n.dSize = n.sSize
	n.outFull.InsertRegion(tensor.Region{Off: n.dOff[:], Size: n.dSize[:]},
		y.Local.Data()[:live*myBlk.Len()*out.H*out.W])
	for q := 1; q < c.Size(); q++ {
		data := c.Recv(q, n.tag)
		blk := n.outBlocks[q]
		if want := live * blk.Len() * out.H * out.W; len(data) != want {
			panic(fmt.Sprintf("nn: dist infer gather got %d words from rank %d, want %d", len(data), q, want))
		}
		n.dOff = [4]int{0, blk.Lo, 0, 0}
		n.dSize = [4]int{live, blk.Len(), out.H, out.W}
		n.outFull.InsertRegion(tensor.Region{Off: n.dOff[:], Size: n.dSize[:]}, data)
		c.Release(data)
	}
	if v := n.outViews[live]; v != nil {
		return v
	}
	v := tensor.FromSlice(n.outFull.Data()[:live*out.C*out.H*out.W], live, out.C, out.H, out.W)
	n.outViews[live] = v
	return v
}

// LoadState restores a full-state checkpoint (written by nn.SaveState from
// any executor of the same architecture) into this rank's shards. Each rank
// reads the checkpoint independently — call collectively with the same
// bytes on every rank.
func (n *DistInferNet) LoadState(r io.Reader) error {
	ck, err := ReadCheckpoint(r)
	if err != nil {
		return err
	}
	return n.LoadCheckpoint(ck)
}

// LoadCheckpoint restores an in-memory checkpoint into this rank's shards:
// every layer extracts its channel/filter slice of the full tensors.
func (n *DistInferNet) LoadCheckpoint(ck *Checkpoint) error {
	if ck.Arch != n.Arch.Name {
		return fmt.Errorf("nn: checkpoint is for architecture %q, not %q", ck.Arch, n.Arch.Name)
	}
	for i, l := range n.layers {
		if l == nil {
			continue
		}
		if err := l.load(ck, n.Arch.Specs[i].Name); err != nil {
			return fmt.Errorf("nn: layer %s: %w", n.Arch.Specs[i].Name, err)
		}
	}
	return nil
}

// ckEntry fetches a checkpoint tensor by name with a length check.
func ckEntry(m map[string][]float32, name, kind string, want int) ([]float32, error) {
	v, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint missing %s %q", kind, name)
	}
	if len(v) != want {
		return nil, fmt.Errorf("%s %q has %d values in checkpoint, want %d", kind, name, len(v), want)
	}
	return v, nil
}

// distInferLayer is one sharded forward-only layer: forward consumes the
// parents' shards, load slices this rank's portion out of a full
// checkpoint. All output storage is owned by the layer and overwritten by
// the next call.
type distInferLayer interface {
	forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor
	load(ck *Checkpoint, name string) error
}

type diFilterConv struct {
	l       *core.FilterParallelConv
	f, c, k int
}

func (d *diFilterConv) forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *diFilterConv) load(ck *Checkpoint, name string) error {
	w, err := ckEntry(ck.Params, name+".w", "parameter", d.f*d.c*d.k*d.k)
	if err != nil {
		return err
	}
	// Filter rows are outermost: this rank's block is a contiguous slice.
	row := d.c * d.k * d.k
	copy(d.l.W.Data(), w[d.l.FRange.Lo*row:d.l.FRange.Hi*row])
	if d.l.Bias != nil {
		b, err := ckEntry(ck.Params, name+".b", "parameter", d.f)
		if err != nil {
			return err
		}
		copy(d.l.Bias, b[d.l.FRange.Lo:d.l.FRange.Hi])
	}
	// The layer may have served (and lazily prepacked) before this restore —
	// rejoin state transfer does exactly that — so force a repack from the
	// fresh weights.
	d.l.InvalidatePacked()
	return nil
}

type diChanConv struct {
	l       *core.ChannelParallelConv
	f, c, k int
}

func (d *diChanConv) forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *diChanConv) load(ck *Checkpoint, name string) error {
	w, err := ckEntry(ck.Params, name+".w", "parameter", d.f*d.c*d.k*d.k)
	if err != nil {
		return err
	}
	// This rank holds W[:, cBlk]: slice the channel block out of every
	// filter row.
	cr := d.l.CRange
	kk := d.k * d.k
	dst := d.l.W.Data()
	for fi := 0; fi < d.f; fi++ {
		copy(dst[fi*cr.Len()*kk:(fi+1)*cr.Len()*kk], w[(fi*d.c+cr.Lo)*kk:(fi*d.c+cr.Hi)*kk])
	}
	if d.l.Bias != nil {
		b, err := ckEntry(ck.Params, name+".b", "parameter", d.f)
		if err != nil {
			return err
		}
		copy(d.l.Bias, b) // replicated within the channel group
	}
	// Force a repack in case the layer already served with stale weights
	// (rejoin state transfer restores into a live net).
	d.l.InvalidatePacked()
	return nil
}

type diBN struct {
	l  *core.BatchNorm
	cr dist.Range
	c  int
}

func (d *diBN) forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor {
	return d.l.Forward(ctx, ins[0])
}

func (d *diBN) load(ck *Checkpoint, name string) error {
	for _, f := range []struct {
		m    map[string][]float32
		key  string
		kind string
		dst  []float32
	}{
		{ck.Params, name + ".gamma", "parameter", d.l.Gamma},
		{ck.Params, name + ".beta", "parameter", d.l.Beta},
		{ck.Buffers, name + ".running_mean", "buffer", d.l.RunMean},
		{ck.Buffers, name + ".running_var", "buffer", d.l.RunVar},
	} {
		v, err := ckEntry(f.m, f.key, f.kind, d.c)
		if err != nil {
			return err
		}
		copy(f.dst, v[d.cr.Lo:d.cr.Hi])
	}
	return nil
}

type diReLU struct{ out core.DistTensor }

func (d *diReLU) forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor {
	kernels.ReLUForward(ins[0].Local, d.out.Local)
	return d.out
}
func (d *diReLU) load(*Checkpoint, string) error { return nil }

type diMaxPool struct {
	spec Spec
	out  core.DistTensor
}

func (d *diMaxPool) forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor {
	kernels.MaxPoolForward(ins[0].Local, d.out.Local, d.spec.Geom.K, d.spec.Geom.S, d.spec.Geom.Pad, nil)
	return d.out
}
func (d *diMaxPool) load(*Checkpoint, string) error { return nil }

type diGAP struct{ out core.DistTensor }

func (d *diGAP) forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor {
	kernels.GlobalAvgPoolForward(ins[0].Local, d.out.Local)
	return d.out
}
func (d *diGAP) load(*Checkpoint, string) error { return nil }

type diAdd struct{ out core.DistTensor }

func (d *diAdd) forward(ctx *core.Ctx, ins [2]core.DistTensor) core.DistTensor {
	kernels.Add(ins[0].Local, ins[1].Local, d.out.Local)
	return d.out
}
func (d *diAdd) load(*Checkpoint, string) error { return nil }
