package nn

import (
	"repro/internal/comm"
	"repro/internal/core"
)

// Gradient-overlap engine: hides the parameter-gradient allreduces of
// distributed training behind the remaining backward computation, the
// paper's Aluminum-style overlap (Section IV). As DistNet.Backward retires
// layer i, that layer's gradient buckets launch non-blocking stable-ring
// allreduces on the communication proxy, which make progress while layers
// i-1..0 are still running their backward kernels; a drain before Backward
// returns completes every request, so the optimizer sees finished
// gradients exactly as in the synchronous mode.
//
// Small tensors (biases, small weight blocks) are coalesced into fusion
// buckets so a handful of large messages replace many latency-bound small
// ones. Bucket assignment is computed once from the layer list — never
// from runtime timing — and the underlying reduction is rank-order stable
// (comm.AllreduceStableRing), so overlapped and synchronous runs produce
// bitwise-identical gradients no matter how the schedule interleaves.

// GradMode selects how DistNet completes parameter gradients.
type GradMode int

const (
	// GradSync is the synchronous baseline: each layer's Backward blocks on
	// its own gradient allreduce before the next layer's kernels start.
	GradSync GradMode = iota
	// GradOverlap defers gradient reductions to bucketed non-blocking
	// allreduces that overlap the remaining backward computation.
	GradOverlap
	// GradSkip leaves deferred gradients unreduced — wrong for training,
	// useful only to measure the communication-free ceiling in benchmarks.
	GradSkip
)

// deferrable is implemented by distributed layers whose parameter-gradient
// reduction can be taken over by the overlap engine. Batch normalization
// implements it with an empty gradient list because its reduction is
// inseparable from backward-data — the engine must leave it alone. Layers
// with no distributed parameter gradients at all (ReLU, pooling, Add; and
// any future wrapper over core.ModelParallelFC, whose weight gradients
// are local by construction) simply don't implement the interface and the
// engine skips them.
type deferrable interface {
	setDeferAllreduce(on bool)
	// deferredGrads returns the gradient slices (in a fixed order) that
	// remain unreduced when allreduce is deferred.
	deferredGrads() [][]float32
}

// fuseTargetWords bounds fusion buckets: tensors at least this large are
// reduced in place (no copy); smaller ones coalesce until a bucket reaches
// this many words. 4K words = 16 KiB, comfortably past the latency-bound
// regime of the in-process transport.
const fuseTargetWords = 4096

// gradBucket is one allreduce unit: either a single large tensor reduced
// in place (fused == nil) or a fusion buffer holding several small ones.
type gradBucket struct {
	parts  [][]float32
	words  int
	fused  []float32
	launch int // layer index whose retirement launches this bucket
	req    *comm.Request
}

// gradPlan is the fixed bucket assignment for one DistNet.
type gradPlan struct {
	buckets []*gradBucket
	atLayer map[int][]*gradBucket
}

// buildGradPlan walks the layers in retirement order (reverse topological,
// the order Backward visits them) and assigns every deferred gradient
// tensor to a bucket. The plan depends only on the architecture, so every
// rank computes the identical assignment.
func buildGradPlan(layers []distLayer) *gradPlan {
	p := &gradPlan{atLayer: make(map[int][]*gradBucket)}
	var open *gradBucket
	closeBucket := func() {
		if open == nil {
			return
		}
		open.fused = make([]float32, open.words)
		p.buckets = append(p.buckets, open)
		p.atLayer[open.launch] = append(p.atLayer[open.launch], open)
		open = nil
	}
	for i := len(layers) - 1; i >= 0; i-- {
		d, ok := layers[i].(deferrable)
		if !ok {
			continue
		}
		for _, g := range d.deferredGrads() {
			if len(g) == 0 {
				continue
			}
			if len(g) >= fuseTargetWords {
				b := &gradBucket{parts: [][]float32{g}, words: len(g), launch: i}
				p.buckets = append(p.buckets, b)
				p.atLayer[i] = append(p.atLayer[i], b)
				continue
			}
			if open == nil {
				open = &gradBucket{}
			}
			open.parts = append(open.parts, g)
			open.words += len(g)
			open.launch = i // retires when its last-added (deepest) member does
			if open.words >= fuseTargetWords {
				closeBucket()
			}
		}
	}
	closeBucket()
	return p
}

// launch starts the non-blocking reductions of every bucket completed by
// layer i's retirement. Fusion buckets gather their members first, freeing
// the member gradient buffers immediately.
func (p *gradPlan) launch(ctx *core.Ctx, i int) {
	for _, b := range p.atLayer[i] {
		buf := b.parts[0]
		if b.fused != nil {
			off := 0
			for _, g := range b.parts {
				copy(b.fused[off:off+len(g)], g)
				off += len(g)
			}
			buf = b.fused
		}
		b.req = ctx.C.IAllreduce(buf, comm.OpSum)
	}
}

// drain waits for every in-flight bucket (in launch order) and scatters
// fusion buffers back into their member gradient slices.
func (p *gradPlan) drain() {
	for _, b := range p.buckets {
		if b.req == nil {
			continue
		}
		b.req.Wait()
		b.req = nil
		if b.fused != nil {
			off := 0
			for _, g := range b.parts {
				copy(g, b.fused[off:off+len(g)])
				off += len(g)
			}
		}
	}
}
