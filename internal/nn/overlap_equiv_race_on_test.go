//go:build race

package nn_test

// raceDetectorOn trims the bitwise-equivalence matrix under -race: the
// detector slows the conv kernels ~15x, and the race job's purpose is
// interleaving coverage (which the remaining grids provide), not
// repeating the float arithmetic checks.
const raceDetectorOn = true
