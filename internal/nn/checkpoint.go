package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpoint is the serialized form of a network's state. Params are the
// learnable parameters; Buffers are the non-learnable state tensors that
// inference nevertheless depends on (batch-normalization running statistics).
// Gradients are transient and never travel. Both executors produce identical
// checkpoints for the same logical network (parameters are replicated under
// distribution), so a model trained distributed can be reloaded sequentially
// — or into a forward-only InferNet for serving — and vice versa.
type Checkpoint struct {
	Arch    string
	Params  map[string][]float32
	Buffers map[string][]float32
}

func packNamed(dst map[string][]float32, src []Param, kind string) error {
	for _, p := range src {
		if _, dup := dst[p.Name]; dup {
			return fmt.Errorf("nn: duplicate %s name %q", kind, p.Name)
		}
		cp := make([]float32, len(p.W))
		copy(cp, p.W)
		dst[p.Name] = cp
	}
	return nil
}

func unpackNamed(src map[string][]float32, dst []Param, kind string) error {
	for _, p := range dst {
		v, ok := src[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing %s %q", kind, p.Name)
		}
		if len(v) != len(p.W) {
			return fmt.Errorf("nn: %s %q has %d values in checkpoint, want %d", kind, p.Name, len(v), len(p.W))
		}
		copy(p.W, v)
	}
	return nil
}

// SaveState writes the full network state — parameters and buffers — to w as
// a gob stream. This is the form the serving subsystem loads: without the
// batch-normalization running statistics an eval-mode forward pass would
// normalize with the initialization values.
func SaveState(w io.Writer, archName string, params, buffers []Param) error {
	ck := Checkpoint{
		Arch:    archName,
		Params:  make(map[string][]float32, len(params)),
		Buffers: make(map[string][]float32, len(buffers)),
	}
	if err := packNamed(ck.Params, params, "parameter"); err != nil {
		return err
	}
	if err := packNamed(ck.Buffers, buffers, "buffer"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadState reads a checkpoint from r and copies values into params and
// buffers. Every entry must be present with a matching length; archName
// guards against loading weights into a different architecture. Checkpoints
// written by SaveParams carry no buffers and fail LoadState when buffers are
// requested — serving requires a full-state checkpoint.
func LoadState(r io.Reader, archName string, params, buffers []Param) error {
	ck, err := ReadCheckpoint(r)
	if err != nil {
		return err
	}
	return ck.Restore(archName, params, buffers)
}

// ReadCheckpoint decodes a checkpoint without binding it to a network —
// the form consumers that shard state (DistInferNet, the serving fleet)
// work from, since their per-rank parameter slices cannot be restored by
// the whole-tensor copy LoadState performs.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	return &ck, nil
}

// CaptureState builds an in-memory checkpoint from a live network's params
// and buffers — what the serving fleet hands to replica ranks so sharded
// replicas can slice the full tensors without a file round trip.
func CaptureState(archName string, params, buffers []Param) (*Checkpoint, error) {
	ck := &Checkpoint{
		Arch:    archName,
		Params:  make(map[string][]float32, len(params)),
		Buffers: make(map[string][]float32, len(buffers)),
	}
	if err := packNamed(ck.Params, params, "parameter"); err != nil {
		return nil, err
	}
	if err := packNamed(ck.Buffers, buffers, "buffer"); err != nil {
		return nil, err
	}
	return ck, nil
}

// Restore copies the checkpoint's values into params and buffers with the
// same contract as LoadState.
func (ck *Checkpoint) Restore(archName string, params, buffers []Param) error {
	if ck.Arch != archName {
		return fmt.Errorf("nn: checkpoint is for architecture %q, not %q", ck.Arch, archName)
	}
	if err := unpackNamed(ck.Params, params, "parameter"); err != nil {
		return err
	}
	return unpackNamed(ck.Buffers, buffers, "buffer")
}

// SaveParams writes every parameter of params to w as a gob stream
// (parameters only; see SaveState for the serving form).
func SaveParams(w io.Writer, archName string, params []Param) error {
	return SaveState(w, archName, params, nil)
}

// LoadParams reads a checkpoint from r and copies values into params.
// Every parameter must be present with a matching length; archName guards
// against loading weights into a different architecture.
func LoadParams(r io.Reader, archName string, params []Param) error {
	return LoadState(r, archName, params, nil)
}
