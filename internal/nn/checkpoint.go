package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpoint is the serialized form of a network's learnable state. Only
// parameter values travel; gradients are transient. Both executors produce
// identical checkpoints for the same logical network (parameters are
// replicated under distribution), so a model trained distributed can be
// reloaded sequentially and vice versa.
type Checkpoint struct {
	Arch   string
	Params map[string][]float32
}

// SaveParams writes every parameter of params to w as a gob stream.
func SaveParams(w io.Writer, archName string, params []Param) error {
	ck := Checkpoint{Arch: archName, Params: make(map[string][]float32, len(params))}
	for _, p := range params {
		if _, dup := ck.Params[p.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		cp := make([]float32, len(p.W))
		copy(cp, p.W)
		ck.Params[p.Name] = cp
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadParams reads a checkpoint from r and copies values into params.
// Every parameter must be present with a matching length; archName guards
// against loading weights into a different architecture.
func LoadParams(r io.Reader, archName string, params []Param) error {
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if ck.Arch != archName {
		return fmt.Errorf("nn: checkpoint is for architecture %q, not %q", ck.Arch, archName)
	}
	for _, p := range params {
		v, ok := ck.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != len(p.W) {
			return fmt.Errorf("nn: parameter %q has %d values in checkpoint, want %d", p.Name, len(v), len(p.W))
		}
		copy(p.W, v)
	}
	return nil
}
