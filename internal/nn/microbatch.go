package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Micro-batching (gradient accumulation) is the out-of-core technique the
// paper contrasts with spatial parallelism for memory pressure (Section
// VII, citing Oyama et al.): when at least one sample fits in memory, a
// mini-batch is split into micro-batches whose gradients accumulate before
// a single update. It reduces peak activation memory by the micro/mini
// ratio, but unlike spatial parallelism it cannot help when a single
// sample's activations exceed device memory, and it serializes the
// micro-batches — which is why the 2K mesh model needs spatial parallelism.

// SegMicroBatchStep runs one training step of a segmentation network over
// micro-batches of at most mb samples, accumulating gradients so that the
// update equals a full-batch step (exactly for batchnorm-free networks;
// with batchnorm, statistics are per-micro-batch, the standard behaviour).
// Returns the mini-batch mean loss. The optimizer step is left to the
// caller, whose params now hold accumulated gradients.
func SegMicroBatchStep(net *SeqNet, x *tensor.Tensor, labels []int32, mb int) float64 {
	n := x.Dim(0)
	if mb <= 0 || mb > n {
		mb = n
	}
	xs := x.Shape()
	perSampleX := x.Size() / n
	perSampleL := len(labels) / n

	params := net.Params()
	acc := make([][]float32, len(params))
	for i, p := range params {
		acc[i] = make([]float32, len(p.G))
	}

	total := 0.0
	for lo := 0; lo < n; lo += mb {
		hi := lo + mb
		if hi > n {
			hi = n
		}
		cnt := hi - lo
		xMicro := tensor.FromSlice(x.Data()[lo*perSampleX:hi*perSampleX], append([]int{cnt}, xs[1:]...)...)
		lMicro := labels[lo*perSampleL : hi*perSampleL]
		logits := net.Forward(xMicro)
		loss, dl := SegLoss(logits, lMicro)
		// SegLoss normalizes by the micro-batch pixel count; reweight so the
		// accumulated gradient matches full-batch normalization.
		w := float32(cnt) / float32(n)
		dl.Scale(w)
		total += loss * float64(w)
		net.Backward(dl)
		for i, p := range params {
			for j, g := range p.G {
				acc[i][j] += g
			}
		}
	}
	for i, p := range params {
		copy(p.G, acc[i])
	}
	return total
}

// PeakActivationBytes estimates the forward activation memory of running
// arch at batch size n — the quantity micro-batching divides (compare
// perfmodel.MemoryBytes, which adds error signals and parameters).
func PeakActivationBytes(arch *Arch, n int) (int64, error) {
	shapes, err := arch.Shapes()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range shapes {
		total += int64(n) * int64(s.C) * int64(s.H) * int64(s.W) * 4
	}
	return total, nil
}

// validateMicroBatch is a defensive check shared by tests.
func validateMicroBatch(n, mb int) error {
	if n <= 0 {
		return fmt.Errorf("nn: empty batch")
	}
	if mb <= 0 {
		return fmt.Errorf("nn: non-positive micro-batch %d", mb)
	}
	return nil
}
