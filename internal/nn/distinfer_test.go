package nn

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// runDistInfer executes fn SPMD on p ranks, each holding a DistInferNet of
// arch with the given split, and returns the leader's outputs for each
// requested live-row count (forwarding the same capacity-sized input).
func runDistInfer(t *testing.T, arch *Arch, p, maxB int, split dist.Split,
	setup func(net *DistInferNet) error, x *tensor.Tensor, lives []int) [][]float32 {
	t.Helper()
	pls := ShardedPlacements(arch, p, split)
	outs := make([][]float32, len(lives))
	var mu sync.Mutex
	var firstErr error
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		net, err := NewDistInferNet(c, arch, maxB, pls)
		if err == nil && setup != nil {
			err = setup(net)
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		for i, live := range lives {
			y := net.Forward(x, live)
			if net.IsLeader() {
				cp := make([]float32, y.Size())
				copy(cp, y.Data())
				mu.Lock()
				outs[i] = cp
				mu.Unlock()
			}
		}
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return outs
}

// refOutputs runs the same live-row prefixes through an InferNet.
func refOutputs(ref *InferNet, x *tensor.Tensor, lives []int) [][]float32 {
	in := ref.InShape()
	outs := make([][]float32, len(lives))
	for i, live := range lives {
		v := tensor.FromSlice(x.Data()[:live*in.C*in.H*in.W], live, in.C, in.H, in.W)
		y := ref.Forward(v)
		outs[i] = make([]float32, y.Size())
		copy(outs[i], y.Data())
	}
	return outs
}

// A filter-sharded replica must answer bit-for-bit like the unsharded
// engine on the same (fresh, seed-matched) weights, for every live-row
// count — the property that lets the serving fleet mix sharded and
// unsharded replicas without clients noticing which one answered.
func TestDistInferNetFilterSplitMatchesInferNetBitwise(t *testing.T) {
	const size, maxB = 8, 4
	arch := servingArch(size)
	ref, err := NewInferNet(arch, maxB)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(maxB, 3, size, size)
	x.FillRandN(7, 1)
	lives := []int{1, 2, 3, 4}
	want := refOutputs(ref, x, lives)
	for _, p := range []int{1, 2} {
		got := runDistInfer(t, arch, p, maxB, dist.SplitFilter, nil, x, lives)
		for i := range lives {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("p=%d live=%d: output size %d, want %d", p, lives[i], len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("p=%d live=%d: output[%d] = %v, want %v (bitwise)", p, lives[i], j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// The checkpoint satellite: LoadState into a placement-sharded DistInferNet
// must produce bitwise-identical eval-mode outputs to the single-replica
// InferNet restored from the same checkpoint.
func TestDistInferCheckpointBitwise(t *testing.T) {
	const size, n, maxB = 8, 4, 4
	arch := servingArch(size)
	seq, err := NewSeqNet(arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainBriefly(t, seq, n, size)
	var buf bytes.Buffer
	if err := SaveState(&buf, arch.Name, seq.Params(), seq.Buffers()); err != nil {
		t.Fatal(err)
	}
	state := buf.Bytes()

	ref, err := NewInferNet(arch, maxB)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadState(bytes.NewReader(state), arch.Name, ref.Params(), ref.Buffers()); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(maxB, 3, size, size)
	x.FillRandN(9, 1)
	lives := []int{1, 3, 4}
	want := refOutputs(ref, x, lives)
	got := runDistInfer(t, arch, 2, maxB, dist.SplitFilter,
		func(net *DistInferNet) error { return net.LoadState(bytes.NewReader(state)) },
		x, lives)
	for i := range lives {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("live=%d: output[%d] = %v, want %v (bitwise)", lives[i], j, got[i][j], want[i][j])
			}
		}
	}
}

// Channel-split shards reassociate the channel sum, so they are only
// float-close to the unsharded engine — but they must be bitwise
// deterministic across repeated forwards and identical runs.
func TestDistInferChannelSplitDeterministic(t *testing.T) {
	const size, maxB = 8, 4
	arch := servingArch(size)
	ref, err := NewInferNet(arch, maxB)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(maxB, 3, size, size)
	x.FillRandN(13, 1)
	lives := []int{2, 2, 4}
	a := runDistInfer(t, arch, 2, maxB, dist.SplitChannel, nil, x, lives)
	b := runDistInfer(t, arch, 2, maxB, dist.SplitChannel, nil, x, lives)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("run-to-run divergence at output[%d][%d]: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	if a[0][0] != a[1][0] {
		// Same live count forwarded twice inside one run must agree too.
		t.Fatalf("repeat forward diverged: %v vs %v", a[0][0], a[1][0])
	}
	want := refOutputs(ref, x, lives)
	for i := range want {
		for j := range want[i] {
			d := float64(a[i][j] - want[i][j])
			if d < 0 {
				d = -d
			}
			if d > 1e-4 {
				t.Fatalf("live=%d output[%d]: channel-split %v far from reference %v", lives[i], j, a[i][j], want[i][j])
			}
		}
	}
}

// A warm sharded forward must allocate nothing: all activations are
// preallocated, collectives stage through the comm pool, and the output
// gather reuses cached views.
func TestDistInferForwardZeroAllocsWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const size, maxB = 8, 4
	arch := servingArch(size)
	pls := ShardedPlacements(arch, 2, dist.SplitFilter)
	x := tensor.New(maxB, 3, size, size)
	x.FillRandN(17, 1)
	var got float64
	var mu sync.Mutex
	w := comm.NewWorld(2)
	w.Run(func(c *comm.Comm) {
		net, err := NewDistInferNet(c, arch, maxB, pls)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 10; i++ {
			net.Forward(x, maxB)
		}
		const runs = 20
		if c.Rank() == 0 {
			a := testing.AllocsPerRun(runs, func() { net.Forward(x, maxB) })
			mu.Lock()
			got = a
			mu.Unlock()
		} else {
			for i := 0; i < runs+1; i++ {
				net.Forward(x, maxB)
			}
		}
	})
	if got != 0 {
		t.Errorf("%v allocs per warm sharded forward, want 0", got)
	}
}
