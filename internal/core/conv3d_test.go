package core

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

var grids3 = []dist.Grid3{
	{PN: 1, PD: 1, PH: 1, PW: 1},
	{PN: 2, PD: 1, PH: 1, PW: 1},
	{PN: 1, PD: 2, PH: 1, PW: 1},
	{PN: 1, PD: 1, PH: 2, PW: 1},
	{PN: 1, PD: 1, PH: 1, PW: 2},
	{PN: 1, PD: 2, PH: 2, PW: 1},
	{PN: 1, PD: 2, PH: 2, PW: 2},
	{PN: 2, PD: 2, PH: 1, PW: 1},
}

func TestScatter3Gather3RoundTrip(t *testing.T) {
	for _, g := range grids3 {
		d := dist.Dist3{Grid3: g, N: 2, C: 2, D: 4, H: 6, W: 6}
		if d.Validate() != nil {
			continue
		}
		x := tensor.New(d.N, d.C, d.D, d.H, d.W)
		x.FillRandN(1, 1)
		if Gather3(Scatter3(x, d)).MaxAbsDiff(x) != 0 {
			t.Errorf("grid %v: 3-D scatter/gather not identity", g)
		}
	}
}

func checkDistConv3D(t *testing.T, g dist.Grid3, n, c, d, h, w, f int, geom dist.ConvGeom) {
	t.Helper()
	inD := dist.Dist3{Grid3: g, N: n, C: c, D: d, H: h, W: w}
	if inD.Validate() != nil {
		return
	}
	od, oh, ow := geom.OutSize(d), geom.OutSize(h), geom.OutSize(w)
	if od < g.PD || oh < g.PH || ow < g.PW {
		return
	}
	x := tensor.New(n, c, d, h, w)
	x.FillRandN(11, 1)
	wt := tensor.New(f, c, geom.K, geom.K, geom.K)
	wt.FillRandN(12, 0.5)
	dy := tensor.New(n, f, od, oh, ow)
	dy.FillRandN(13, 1)

	ySeq := tensor.New(n, f, od, oh, ow)
	kernels.Conv3DForward(x, wt, nil, ySeq, geom.S, geom.Pad)
	dxSeq := tensor.New(n, c, d, h, w)
	kernels.Conv3DBackwardData(dy, wt, dxSeq, geom.S, geom.Pad)
	dwSeq := tensor.New(f, c, geom.K, geom.K, geom.K)
	kernels.Conv3DBackwardFilter(x, dy, dwSeq, geom.S, geom.Pad, false)

	outD := dist.Dist3{Grid3: g, N: n, C: f, D: od, H: oh, W: ow}
	xs := Scatter3(x, inD)
	dys := Scatter3(dy, outD)
	yOut := make([]DistTensor3, g.Size())
	dxOut := make([]DistTensor3, g.Size())
	dwOut := make([]*tensor.Tensor, g.Size())
	var mu sync.Mutex
	world := comm.NewWorld(g.Size())
	world.Run(func(cm *comm.Comm) {
		ctx := NewCtx3(cm, g)
		l := NewConv3D(ctx, inD, f, geom)
		copy(l.W.Data(), wt.Data())
		y := l.Forward(ctx, xs[ctx.Rank])
		dx := l.Backward(ctx, dys[ctx.Rank])
		mu.Lock()
		yOut[ctx.Rank] = y
		dxOut[ctx.Rank] = dx
		dwOut[ctx.Rank] = l.DW
		mu.Unlock()
	})

	if diff := Gather3(yOut).RelDiff(ySeq); diff > 1e-4 {
		t.Errorf("grid %v geom %+v: 3-D forward rel diff %g", g, geom, diff)
	}
	if diff := Gather3(dxOut).RelDiff(dxSeq); diff > 1e-4 {
		t.Errorf("grid %v geom %+v: 3-D bwd-data rel diff %g", g, geom, diff)
	}
	for r := 0; r < g.Size(); r++ {
		if diff := dwOut[r].RelDiff(dwSeq); diff > 1e-3 {
			t.Errorf("grid %v rank %d: 3-D dw rel diff %g", g, r, diff)
		}
	}
}

func TestDistConv3DAllGrids(t *testing.T) {
	for _, g := range grids3 {
		checkDistConv3D(t, g, 2, 2, 6, 6, 6, 3, dist.ConvGeom{K: 3, S: 1, Pad: 1})
	}
}

func TestDistConv3DStride2(t *testing.T) {
	for _, g := range grids3 {
		checkDistConv3D(t, g, 2, 2, 8, 8, 8, 2, dist.ConvGeom{K: 3, S: 2, Pad: 1})
	}
}

func TestDistConv3D1x1NoComm(t *testing.T) {
	// K=1 needs no halo in any dimension.
	checkDistConv3D(t, dist.Grid3{PN: 1, PD: 2, PH: 2, PW: 2}, 1, 4, 4, 4, 4, 2, dist.ConvGeom{K: 1, S: 1, Pad: 0})
}

func TestDistConv3DUnevenPartition(t *testing.T) {
	// D=7 over 2 parts, H=9 over 2: uneven blocks with corners in 3-D.
	checkDistConv3D(t, dist.Grid3{PN: 1, PD: 2, PH: 2, PW: 2}, 1, 2, 7, 9, 8, 2, dist.ConvGeom{K: 3, S: 1, Pad: 1})
}

func TestGrid3CoordsRoundTrip(t *testing.T) {
	g := dist.Grid3{PN: 2, PD: 3, PH: 2, PW: 2}
	for r := 0; r < g.Size(); r++ {
		pn, pd, ph, pw := g.Coords(r)
		if g.Rank(pn, pd, ph, pw) != r {
			t.Fatalf("rank %d does not round-trip", r)
		}
	}
	if g.SpatialWays() != 12 {
		t.Fatalf("SpatialWays = %d, want 12", g.SpatialWays())
	}
}
