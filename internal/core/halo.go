package core

import (
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Ext is a halo-extended local buffer: element (·,·,0,0) of T corresponds to
// global coordinates (HLo, WLo), which may be negative or extend past the
// global extent for forward buffers (those positions hold materialized zero
// padding, so convolution kernels run with pad=0 on it).
type Ext struct {
	T        *tensor.Tensor
	HLo, WLo int

	buf *[]float32 // workspace handle when storage is borrowed
}

// Release returns workspace-backed storage to ws; a no-op for ext buffers
// allocated with NewExt. The tensor must not be used afterwards.
func (e *Ext) Release(ws *kernels.Workspace) {
	if e.buf != nil {
		ws.Put(e.buf)
		e.buf = nil
		e.T = nil
	}
}

// HaloPlan precomputes the transfer lists of a 2-phase halo exchange for one
// (distribution, geometry) pair: phase W moves column strips of owned rows,
// phase H moves full-width row strips (corners piggyback on phase H because
// the W phase has already widened the neighbor's rows). The same plan run in
// reverse accumulates boundary contributions back to their owners (used by
// the pooling backward scatter).
type HaloPlan struct {
	grid           dist.Grid
	pn, pc, ph, pw int
	nLoc, c        int
	ownH, ownW     dist.Range
	reqH, reqW     dist.Range // this rank's (possibly unclipped) required intervals
	// The ext buffer spans the union of owned and required intervals: with
	// stride > 1 a rank's required window may not cover all of its owned
	// block, yet neighbors' sends are served out of the owned data held in
	// ext during phase H, so both must be present.
	extHRng, extWRng dist.Range
	recvW            []dist.Transfer
	sendW            []dist.Transfer
	recvH            []dist.Transfer
	sendH            []dist.Transfer
}

// union returns the smallest range covering both a and b.
func union(a, b dist.Range) dist.Range {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return dist.Range{Lo: lo, Hi: hi}
}

// planExchange builds a HaloPlan. own* are this rank's owned intervals of a
// tensor whose H/W dimensions are blocked over the grid with global extents
// sizeH/sizeW; reqHof(j)/reqWof(j) give the interval block j needs.
func planExchange(grid dist.Grid, rank, nLoc, c int, sizeH, sizeW int,
	ownH, ownW dist.Range, reqHof, reqWof func(j int) dist.Range) *HaloPlan {
	pn, pc, ph, pw := grid.Coords(rank)
	p := &HaloPlan{
		grid: grid, pn: pn, pc: pc, ph: ph, pw: pw,
		nLoc: nLoc, c: c,
		ownH: ownH, ownW: ownW,
		reqH: reqHof(ph), reqW: reqWof(pw),
	}
	p.extHRng = union(p.reqH, ownH)
	p.extWRng = union(p.reqW, ownW)
	p.recvW, p.sendW = dist.Exchanges1D(sizeW, grid.PW, pw, reqWof)
	p.recvH, p.sendH = dist.Exchanges1D(sizeH, grid.PH, ph, reqHof)
	return p
}

// extH/extW are the halo-extended buffer extents.
func (p *HaloPlan) extH() int { return p.extHRng.Len() }
func (p *HaloPlan) extW() int { return p.extWRng.Len() }

// AlignH/AlignW are the offsets of the required window inside the ext
// buffer; zero whenever required covers owned (e.g. stride 1).
func (p *HaloPlan) AlignH() int { return p.reqH.Lo - p.extHRng.Lo }

// AlignW is the column analogue of AlignH.
func (p *HaloPlan) AlignW() int { return p.reqW.Lo - p.extWRng.Lo }

// NewExt allocates the zeroed halo-extended buffer for this plan.
func (p *HaloPlan) NewExt() Ext {
	return Ext{T: tensor.New(p.nLoc, p.c, p.extH(), p.extW()), HLo: p.extHRng.Lo, WLo: p.extWRng.Lo}
}

// NewExtIn is NewExt with storage borrowed from ws (zeroed); callers release
// it with Ext.Release once the exchange's consumers are done, making
// steady-state halo exchanges allocation-free apart from the tensor header.
func (p *HaloPlan) NewExtIn(ws *kernels.Workspace) Ext {
	buf := ws.GetZeroed(p.nLoc * p.c * p.extH() * p.extW())
	return Ext{
		T:   tensor.FromSlice(*buf, p.nLoc, p.c, p.extH(), p.extW()),
		HLo: p.extHRng.Lo, WLo: p.extWRng.Lo,
		buf: buf,
	}
}

// fillOwned copies the local shard into the owned region of ext.
func (p *HaloPlan) fillOwned(ext Ext, local *tensor.Tensor) {
	ext.T.InsertRegion(
		tensor.Region{
			Off:  []int{0, 0, p.ownH.Lo - ext.HLo, p.ownW.Lo - ext.WLo},
			Size: []int{p.nLoc, p.c, p.ownH.Len(), p.ownW.Len()},
		},
		local.Data())
}

// Run executes the forward 2-phase exchange: given the local shard, it
// returns the halo-extended buffer with all remote halo regions filled.
// tag must be unique per concurrently outstanding exchange on the context.
func (p *HaloPlan) Run(ctx *Ctx, local *tensor.Tensor, tag int) Ext {
	ext := p.NewExt()
	p.fillOwned(ext, local)
	p.RunInto(ctx, local, ext, tag)
	return ext
}

// RunInto performs the exchange into a pre-filled ext buffer (owned region
// already populated). Split from Run so the overlapped convolution path can
// run it off the critical path while computing the interior. Transfer
// fragments stage through the comm message pool in both directions, so a
// warm exchange allocates nothing.
func (p *HaloPlan) RunInto(ctx *Ctx, local *tensor.Tensor, ext Ext, tag int) {
	p.RunIntoOn(ctx.C, local, ext, tag)
}

// RunIntoOn is RunInto on an explicit communicator handle: the overlapped
// convolution path submits it to the communicator's proxy engine
// (comm.Comm.Do), whose shadow handle has an isolated tag space, so the
// exchange proceeds concurrently with the interior kernels without
// spawning a goroutine per layer.
func (p *HaloPlan) RunIntoOn(cm *comm.Comm, local *tensor.Tensor, ext Ext, tag int) {
	// Phase W: strips of owned rows. Post all sends, then receive.
	for _, tr := range p.sendW {
		peer := p.grid.Rank(p.pn, p.pc, p.ph, tr.Peer)
		buf := comm.GetBuf(p.nLoc * p.c * p.ownH.Len() * tr.Rng.Len())
		local.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, 0, tr.Rng.Lo - p.ownW.Lo},
			Size: []int{p.nLoc, p.c, p.ownH.Len(), tr.Rng.Len()},
		}, buf)
		cm.SendNoCopy(peer, tag, buf)
	}
	for _, tr := range p.recvW {
		peer := p.grid.Rank(p.pn, p.pc, p.ph, tr.Peer)
		buf := cm.Recv(peer, tag)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, p.ownH.Lo - ext.HLo, tr.Rng.Lo - ext.WLo},
			Size: []int{p.nLoc, p.c, p.ownH.Len(), tr.Rng.Len()},
		}, buf)
		cm.Release(buf)
	}
	// Phase H: full-width strips out of the (now W-extended) buffer.
	for _, tr := range p.sendH {
		peer := p.grid.Rank(p.pn, p.pc, tr.Peer, p.pw)
		buf := comm.GetBuf(p.nLoc * p.c * tr.Rng.Len() * p.extW())
		ext.T.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - ext.HLo, 0},
			Size: []int{p.nLoc, p.c, tr.Rng.Len(), p.extW()},
		}, buf)
		cm.SendNoCopy(peer, tag+1, buf)
	}
	for _, tr := range p.recvH {
		peer := p.grid.Rank(p.pn, p.pc, tr.Peer, p.pw)
		buf := cm.Recv(peer, tag+1)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - ext.HLo, 0},
			Size: []int{p.nLoc, p.c, tr.Rng.Len(), p.extW()},
		}, buf)
		cm.Release(buf)
	}
}

// RunReverse executes the adjoint of the forward exchange: margin
// contributions accumulated in ext (e.g. by a pooling backward scatter) are
// sent back and summed into their owners, and the owned region of ext —
// including received contributions — is written to local. Phase order is
// mirrored (H first, then W) so corner contributions route through the same
// intermediate ranks as in the forward exchange.
func (p *HaloPlan) RunReverse(ctx *Ctx, ext Ext, local *tensor.Tensor, tag int) {
	cm := ctx.C
	// Reverse phase H: send back the full-width row strips I held as halo.
	for _, tr := range p.recvH {
		peer := p.grid.Rank(p.pn, p.pc, tr.Peer, p.pw)
		buf := comm.GetBuf(p.nLoc * p.c * tr.Rng.Len() * p.extW())
		ext.T.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - ext.HLo, 0},
			Size: []int{p.nLoc, p.c, tr.Rng.Len(), p.extW()},
		}, buf)
		cm.SendNoCopy(peer, tag, buf)
	}
	for _, tr := range p.sendH {
		peer := p.grid.Rank(p.pn, p.pc, tr.Peer, p.pw)
		buf := cm.Recv(peer, tag)
		ext.T.AddRegion(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - ext.HLo, 0},
			Size: []int{p.nLoc, p.c, tr.Rng.Len(), p.extW()},
		}, buf)
		cm.Release(buf)
	}
	// Reverse phase W: send back column strips of owned rows.
	for _, tr := range p.recvW {
		peer := p.grid.Rank(p.pn, p.pc, p.ph, tr.Peer)
		buf := comm.GetBuf(p.nLoc * p.c * p.ownH.Len() * tr.Rng.Len())
		ext.T.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, p.ownH.Lo - ext.HLo, tr.Rng.Lo - ext.WLo},
			Size: []int{p.nLoc, p.c, p.ownH.Len(), tr.Rng.Len()},
		}, buf)
		cm.SendNoCopy(peer, tag+1, buf)
	}
	for _, tr := range p.sendW {
		peer := p.grid.Rank(p.pn, p.pc, p.ph, tr.Peer)
		buf := cm.Recv(peer, tag+1)
		ext.T.AddRegion(tensor.Region{
			Off:  []int{0, 0, p.ownH.Lo - ext.HLo, tr.Rng.Lo - ext.WLo},
			Size: []int{p.nLoc, p.c, p.ownH.Len(), tr.Rng.Len()},
		}, buf)
		cm.Release(buf)
	}
	// Extract the accumulated owned region into the local shard.
	local.InsertRegion(
		tensor.Region{Off: []int{0, 0, 0, 0}, Size: []int{p.nLoc, p.c, p.ownH.Len(), p.ownW.Len()}},
		ext.T.ExtractRegion(tensor.Region{
			Off:  []int{0, 0, p.ownH.Lo - ext.HLo, p.ownW.Lo - ext.WLo},
			Size: []int{p.nLoc, p.c, p.ownH.Len(), p.ownW.Len()},
		}))
}

// HaloVolume returns the number of elements this rank receives in the
// exchange — the quantity the performance model prices (Section V-A).
func (p *HaloPlan) HaloVolume() int {
	v := 0
	for _, tr := range p.recvW {
		v += p.nLoc * p.c * p.ownH.Len() * tr.Rng.Len()
	}
	for _, tr := range p.recvH {
		v += p.nLoc * p.c * tr.Rng.Len() * p.extW()
	}
	return v
}

// forwardPlan builds the halo plan for the input of a convolution/pooling
// operator: x is blocked over inDist, outputs over the same grid with
// extents outH x outW, and block j of the output requires
// geom.RequiredIn(outBlock(j)) of the input (unclipped; out-of-range
// positions are materialized padding).
func forwardPlan(inDist dist.Dist, rank int, geom dist.ConvGeom, outH, outW int) *HaloPlan {
	nLoc := inDist.RangeN(rank).Len()
	cLoc := inDist.RangeC(rank).Len()
	reqHof := func(j int) dist.Range {
		return geom.RequiredIn(dist.BlockPartition(outH, inDist.Grid.PH, j))
	}
	reqWof := func(j int) dist.Range {
		return geom.RequiredIn(dist.BlockPartition(outW, inDist.Grid.PW, j))
	}
	return planExchange(inDist.Grid, rank, nLoc, cLoc, inDist.H, inDist.W,
		inDist.RangeH(rank), inDist.RangeW(rank), reqHof, reqWof)
}

// backwardPlan builds the halo plan for the output gradient dy: dy is
// blocked over outDist, and computing dx on input block j requires
// geom.RequiredBwd(inBlock(j)) of dy (clipped to the output extent).
func backwardPlan(outDist dist.Dist, rank int, geom dist.ConvGeom, inH, inW int) *HaloPlan {
	nLoc := outDist.RangeN(rank).Len()
	cLoc := outDist.RangeC(rank).Len()
	reqHof := func(j int) dist.Range {
		return geom.RequiredBwd(dist.BlockPartition(inH, outDist.Grid.PH, j), outDist.H)
	}
	reqWof := func(j int) dist.Range {
		return geom.RequiredBwd(dist.BlockPartition(inW, outDist.Grid.PW, j), outDist.W)
	}
	return planExchange(outDist.Grid, rank, nLoc, cLoc, outDist.H, outDist.W,
		outDist.RangeH(rank), outDist.RangeW(rank), reqHof, reqWof)
}
