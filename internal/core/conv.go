package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Conv is a distributed 2-D convolution layer supporting sample, spatial,
// and hybrid sample/spatial parallelism (Section III-A). The weights (and
// bias) are replicated on every processor; activations are blocked over the
// processor grid. Forward and backward-data passes perform halo exchanges;
// the weight-gradient sum is completed with an allreduce over all
// processors.
type Conv struct {
	Geom    dist.ConvGeom
	InDist  dist.Dist
	OutDist dist.Dist

	W     *tensor.Tensor // [F, C, K, K], replicated
	Bias  []float32      // optional, [F]
	DW    *tensor.Tensor
	DBias []float32

	// Algo selects the local convolution kernel (cuDNN algorithm analogue).
	Algo kernels.ConvAlgo
	// Overlap enables interior/boundary decomposition in forward propagation
	// and hiding the dy halo exchange under the filter-gradient computation
	// in backpropagation (Section IV-A).
	Overlap bool
	// DeferAllreduce leaves the dw/dbias allreduce to the caller (the
	// network runner overlaps it with other layers, Section V-B); when
	// false Backward completes gradients before returning.
	DeferAllreduce bool

	fwdPlan *HaloPlan
	bwdPlan *HaloPlan
	tag     int

	// Pre-bound proxy closures for the overlapped halo exchanges: the
	// exchange runs on the communicator's proxy engine (comm.Comm.Do)
	// instead of a goroutine spawned per layer call, and re-binding only
	// mutates these argument structs, so a warm overlapped step submits
	// with zero allocations.
	fwdExch, bwdExch exchangeOp

	// inference marks a forward-only layer (NewConvInference): no gradient
	// buffers exist, Backward panics, and the halo-extended input is
	// released at the end of Forward instead of being stashed.
	inference bool

	// ws supplies all transient buffers (halo-extended inputs, region
	// scratch); the layer owns it and reuses the storage across steps, so a
	// warm training step performs no layer-level allocations beyond its
	// output shards. Defaults to the process-wide kernels workspace.
	ws *kernels.Workspace

	xExt   Ext // forward input with halo, kept for backward-filter
	hasExt bool
}

// NewConv constructs a distributed convolution layer producing f filters
// from inputs distributed as inDist. bias=true adds a learnable bias.
func NewConv(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *Conv {
	l := newConv(ctx, inDist, f, geom, bias)
	l.DW = tensor.New(f, inDist.C, geom.K, geom.K)
	if bias {
		l.DBias = make([]float32, f)
	}
	l.bwdPlan = backwardPlan(l.OutDist, ctx.Rank, geom, inDist.H, inDist.W)
	return l
}

func newConv(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *Conv {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if inDist.Grid.ChannelWays() > 1 {
		panic(fmt.Sprintf("core: replicated-weight Conv cannot consume channel-partitioned input %v; use NewChannelParallelConv or NewFilterParallelConv", inDist))
	}
	outH, outW := geom.OutSize(inDist.H), geom.OutSize(inDist.W)
	if outH < inDist.Grid.PH || outW < inDist.Grid.PW {
		panic(fmt.Sprintf("core: output %dx%d too small for grid %v", outH, outW, inDist.Grid))
	}
	outDist := dist.Dist{Grid: inDist.Grid, N: inDist.N, C: f, H: outH, W: outW}
	l := &Conv{
		Geom:    geom,
		InDist:  inDist,
		OutDist: outDist,
		W:       tensor.New(f, inDist.C, geom.K, geom.K),
		Algo:    kernels.ConvAuto,
		Overlap: true,
		tag:     ctx.AllocTags(4),
		ws:      kernels.DefaultWorkspace(),
	}
	if bias {
		l.Bias = make([]float32, f)
	}
	// Only the forward halo plan is built here; NewConv adds the backward
	// plan, which a forward-only layer never needs.
	l.fwdPlan = forwardPlan(inDist, ctx.Rank, geom, outH, outW)
	return l
}

// exchangeOp carries one halo exchange onto the communication proxy: fn is
// bound to the struct once, and start only mutates the arguments before
// submitting, keeping the warm path allocation-free.
type exchangeOp struct {
	plan  *HaloPlan
	local *tensor.Tensor
	ext   Ext
	tag   int
	fn    func(*comm.Comm)
}

// start submits the exchange to ctx.C's proxy engine and returns its
// request handle; the caller overlaps compute and then Waits.
func (e *exchangeOp) start(ctx *Ctx, plan *HaloPlan, local *tensor.Tensor, ext Ext, tag int) *comm.Request {
	e.plan, e.local, e.ext, e.tag = plan, local, ext, tag
	if e.fn == nil {
		e.fn = e.run
	}
	return ctx.C.Do(e.fn)
}

func (e *exchangeOp) run(proxy *comm.Comm) {
	e.plan.RunIntoOn(proxy, e.local, e.ext, e.tag)
}

// Forward computes the local output shard, exchanging input halos with
// spatial neighbors. With Overlap, the halo exchange runs concurrently with
// the interior convolution and only the boundary waits for it.
func (l *Conv) Forward(ctx *Ctx, x DistTensor) DistTensor {
	if !x.Dist.SameLayout(l.InDist) {
		panic(fmt.Sprintf("core: conv input dist %v, want %v", x.Dist, l.InDist))
	}
	y := NewDistTensor(l.OutDist, ctx.Rank)
	plan := l.fwdPlan
	hasHalo := len(plan.recvW)+len(plan.recvH)+len(plan.sendW)+len(plan.sendH) > 0

	// Forward-only use (inference) never reaches Backward's release; recycle
	// the previous step's buffer here so those loops stay allocation-free.
	l.xExt.Release(l.ws)
	ext := plan.NewExtIn(l.ws)
	plan.fillOwned(ext, x.Local)
	if l.Overlap && hasHalo {
		req := l.fwdExch.start(ctx, plan, x.Local, ext, l.tag)
		intH, intW := l.interiorRange(ctx)
		l.convRegion(ext, y.Local, intH, intW)
		req.Wait()
		oh := l.localOutH(ctx)
		ow := l.localOutW(ctx)
		// Boundary: top and bottom full-width strips, then left/right
		// columns of the interior rows.
		for _, r := range []struct{ h, w dist.Range }{
			{dist.Range{Lo: 0, Hi: intH.Lo}, dist.Range{Lo: 0, Hi: ow}},
			{dist.Range{Lo: intH.Hi, Hi: oh}, dist.Range{Lo: 0, Hi: ow}},
			{intH, dist.Range{Lo: 0, Hi: intW.Lo}},
			{intH, dist.Range{Lo: intW.Hi, Hi: ow}},
		} {
			l.convRegion(ext, y.Local, r.h, r.w)
		}
	} else {
		if hasHalo {
			plan.RunInto(ctx, x.Local, ext, l.tag)
		}
		oh, ow := l.localOutH(ctx), l.localOutW(ctx)
		if plan.AlignH() == 0 && plan.AlignW() == 0 &&
			ext.T.Dim(2) == (oh-1)*l.Geom.S+l.Geom.K && ext.T.Dim(3) == (ow-1)*l.Geom.S+l.Geom.K {
			// Ext is exactly the required window: convolve it directly.
			kernels.ConvForward(ext.T, l.W, l.Bias, y.Local, l.Geom.S, 0, l.Algo)
		} else {
			l.convRegion(ext, y.Local, dist.Range{Lo: 0, Hi: oh}, dist.Range{Lo: 0, Hi: ow})
		}
	}
	if l.inference {
		// Nothing will ever read the stash; hand the halo buffer straight
		// back to the workspace.
		ext.Release(l.ws)
		return y
	}
	l.xExt = ext
	l.hasExt = true
	return y
}

// localOutH/localOutW are the extents of this rank's output shard.
func (l *Conv) localOutH(ctx *Ctx) int { return l.OutDist.RangeH(ctx.Rank).Len() }
func (l *Conv) localOutW(ctx *Ctx) int { return l.OutDist.RangeW(ctx.Rank).Len() }

// interiorRange returns the local output rows/cols whose convolution windows
// read only owned input (computable before the halo exchange completes).
func (l *Conv) interiorRange(ctx *Ctx) (h, w dist.Range) {
	outH := l.OutDist.RangeH(ctx.Rank)
	outW := l.OutDist.RangeW(ctx.Rank)
	inH := l.InDist.RangeH(ctx.Rank)
	inW := l.InDist.RangeW(ctx.Rank)
	h = interior1D(outH, inH, l.Geom, l.InDist.H)
	w = interior1D(outW, inW, l.Geom, l.InDist.W)
	return
}

// interior1D computes, in local output coordinates, the output indices whose
// required inputs fall inside the owned interval (padding positions count as
// available, since they are materialized zeros, not remote data).
func interior1D(out, own dist.Range, g dist.ConvGeom, size int) dist.Range {
	lo := out.Lo
	for lo < out.Hi {
		req := g.RequiredIn(dist.Range{Lo: lo, Hi: lo + 1}).Intersect(dist.Range{Lo: 0, Hi: size})
		if req.Lo >= own.Lo {
			break
		}
		lo++
	}
	hi := out.Hi
	for hi > lo {
		req := g.RequiredIn(dist.Range{Lo: hi - 1, Hi: hi}).Intersect(dist.Range{Lo: 0, Hi: size})
		if req.Hi <= own.Hi {
			break
		}
		hi--
	}
	return dist.Range{Lo: lo - out.Lo, Hi: hi - out.Lo}
}

// convRegion convolves one rectangular region of the local output (local
// coordinates) out of the halo-extended buffer: output position (oy, ox)
// reads ext rows [AlignH + oy*S, AlignH + oy*S + K) (padding is
// materialized, so the kernel runs with pad=0).
func (l *Conv) convRegion(ext Ext, yLoc *tensor.Tensor, rh, rw dist.Range) {
	if rh.Empty() || rw.Empty() {
		return
	}
	s, k := l.Geom.S, l.Geom.K
	n := ext.T.Dim(0)
	c := ext.T.Dim(1)
	f := l.W.Dim(0)
	ah, aw := l.fwdPlan.AlignH(), l.fwdPlan.AlignW()
	sh, sw := (rh.Len()-1)*s+k, (rw.Len()-1)*s+k
	subBuf := l.ws.Get(n * c * sh * sw)
	sub := tensor.FromSlice(*subBuf, n, c, sh, sw)
	sub.CopyRegion(
		tensor.Region{Off: []int{0, 0, 0, 0}, Size: sub.Shape()},
		ext.T,
		tensor.Region{Off: []int{0, 0, ah + rh.Lo*s, aw + rw.Lo*s}, Size: []int{n, c, sh, sw}})
	yBuf := l.ws.Get(n * f * rh.Len() * rw.Len())
	yPart := tensor.FromSlice(*yBuf, n, f, rh.Len(), rw.Len())
	kernels.ConvForward(sub, l.W, l.Bias, yPart, s, 0, l.Algo)
	yLoc.InsertRegion(
		tensor.Region{Off: []int{0, 0, rh.Lo, rw.Lo}, Size: []int{n, f, rh.Len(), rw.Len()}},
		yPart.Data())
	l.ws.Put(subBuf)
	l.ws.Put(yBuf)
}

// Backward computes the local weight gradients (completed by an allreduce
// over all processors unless DeferAllreduce), and returns the error signal
// for the parent layer. With Overlap, the dy halo exchange is hidden under
// the filter-gradient convolution, which needs no halo (Section IV-A).
func (l *Conv) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	if !dy.Dist.SameLayout(l.OutDist) {
		panic(fmt.Sprintf("core: conv dy dist %v, want %v", dy.Dist, l.OutDist))
	}
	if l.DW == nil {
		panic("core: Backward on an inference-only Conv (NewConvInference)")
	}
	if !l.hasExt {
		panic("core: conv Backward called before Forward")
	}
	plan := l.bwdPlan
	hasHalo := len(plan.recvW)+len(plan.recvH)+len(plan.sendW)+len(plan.sendH) > 0

	dyExt := plan.NewExtIn(l.ws)
	plan.fillOwned(dyExt, dy.Local)
	xAligned, xBuf := l.alignedInput(ctx)
	runFilter := func() {
		kernels.ConvBackwardFilter(xAligned, dy.Local, l.DW, l.Geom.S, 0, false)
		if l.Bias != nil {
			kernels.BiasBackward(dy.Local, l.DBias, false)
		}
	}
	if l.Overlap && hasHalo {
		req := l.bwdExch.start(ctx, plan, dy.Local, dyExt, l.tag+2)
		runFilter()
		req.Wait()
	} else {
		if hasHalo {
			plan.RunInto(ctx, dy.Local, dyExt, l.tag+2)
		}
		runFilter()
	}
	if xBuf != nil {
		l.ws.Put(xBuf)
	}
	l.xExt.Release(l.ws)

	dx := NewDistTensor(l.InDist, ctx.Rank)
	inH := l.InDist.RangeH(ctx.Rank)
	inW := l.InDist.RangeW(ctx.Rank)
	kernels.ConvBackwardDataRegion(dyExt.T, l.W, dx.Local, l.Geom.S, l.Geom.Pad,
		inH.Lo, inW.Lo, dyExt.HLo, dyExt.WLo)
	dyExt.Release(l.ws)

	if !l.DeferAllreduce {
		l.ReduceGradients(ctx)
	}
	l.hasExt = false
	l.xExt = Ext{}
	return dx
}

// alignedInput returns the forward ext buffer restricted to the required
// window (so that pad=0 kernels see ext row oy*S+kh for local output oy).
// When the buffer is already exactly the required window it is returned
// as-is, avoiding the copy — the common stride-1 case. The second result is
// the workspace handle of the copy (nil when no copy was made); the caller
// returns it to the layer workspace after use.
func (l *Conv) alignedInput(ctx *Ctx) (*tensor.Tensor, *[]float32) {
	oh, ow := l.localOutH(ctx), l.localOutW(ctx)
	needH := (oh-1)*l.Geom.S + l.Geom.K
	needW := (ow-1)*l.Geom.S + l.Geom.K
	ah, aw := l.fwdPlan.AlignH(), l.fwdPlan.AlignW()
	if ah == 0 && aw == 0 && l.xExt.T.Dim(2) == needH && l.xExt.T.Dim(3) == needW {
		return l.xExt.T, nil
	}
	n, c := l.xExt.T.Dim(0), l.xExt.T.Dim(1)
	buf := l.ws.Get(n * c * needH * needW)
	sub := tensor.FromSlice(*buf, n, c, needH, needW)
	sub.CopyRegion(
		tensor.Region{Off: []int{0, 0, 0, 0}, Size: sub.Shape()},
		l.xExt.T,
		tensor.Region{Off: []int{0, 0, ah, aw}, Size: []int{n, c, needH, needW}})
	return sub, buf
}

// ReduceGradients completes the weight-gradient sum of Eq. 2 with an
// allreduce over all processors (D^(C) and D^(F) are fully replicated, so
// the group P^(p)(D^(C), D^(F)) is the whole grid). The reduction is
// rank-order stable, so the same gradients emerge bitwise whether the sum
// runs here, deferred on a proxy goroutine, or fused into a coalescing
// bucket (nn's gradient-overlap engine).
func (l *Conv) ReduceGradients(ctx *Ctx) {
	if ctx.C.Size() == 1 {
		return
	}
	ctx.C.AllreduceAlgo(l.DW.Data(), comm.OpSum, comm.AllreduceStableRing)
	if l.DBias != nil {
		ctx.C.AllreduceAlgo(l.DBias, comm.OpSum, comm.AllreduceStableRing)
	}
}

// GradientWords returns the allreduce payload size in words, for the
// performance model.
func (l *Conv) GradientWords() int {
	if l.DW == nil {
		return 0
	}
	n := l.DW.Size()
	if l.DBias != nil {
		n += len(l.DBias)
	}
	return n
}
