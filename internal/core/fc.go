package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// ModelParallelFC is a fully-connected layer in LBANN's model-parallel
// formulation (Sections II-A and III-B): the weight matrix is partitioned by
// output rows across the communicator while activations enter and leave
// partitioned by sample. Forward allgathers the sample shards, multiplies by
// the local weight block, and transposes the result back to sample
// partitioning with an all-to-all. Weight gradients are purely local —
// model-parallel FC layers need no allreduce (Section V-B).
type ModelParallelFC struct {
	In, Out int // global dimensions
	N       int // global batch size

	OutRange dist.Range // rows of W owned by this rank

	W     *tensor.Tensor // [outLoc, In]
	Bias  []float32      // [outLoc]
	DW    *tensor.Tensor
	DBias []float32

	xFull *tensor.Tensor // gathered input, saved for backward

	// inference marks a forward-only layer (no gradient buffers, no input
	// stash; Backward panics).
	inference bool

	// ws supplies the distributed-GEMM temporaries (local output block,
	// transposed gradient block, full dx), reused across steps.
	ws *kernels.Workspace
}

// NewModelParallelFC constructs the layer for a batch of n samples with the
// given global in/out widths, on communicator c (model-parallel group).
func NewModelParallelFC(c *comm.Comm, n, in, out int) *ModelParallelFC {
	if out < c.Size() {
		panic(fmt.Sprintf("core: fc out=%d smaller than communicator size %d", out, c.Size()))
	}
	r := dist.BlockPartition(out, c.Size(), c.Rank())
	return &ModelParallelFC{
		In: in, Out: out, N: n,
		OutRange: r,
		W:        tensor.New(r.Len(), in),
		Bias:     make([]float32, r.Len()),
		DW:       tensor.New(r.Len(), in),
		DBias:    make([]float32, r.Len()),
		ws:       kernels.DefaultWorkspace(),
	}
}

// NewModelParallelFCInference is NewModelParallelFC without gradient state:
// Forward neither stashes the gathered batch nor supports Backward.
func NewModelParallelFCInference(c *comm.Comm, n, in, out int) *ModelParallelFC {
	l := NewModelParallelFC(c, n, in, out)
	l.DW, l.DBias = nil, nil
	l.inference = true
	return l
}

// sampleRange returns the samples owned by rank under the N partition.
func (l *ModelParallelFC) sampleRange(c *comm.Comm, rank int) dist.Range {
	return dist.BlockPartition(l.N, c.Size(), rank)
}

// Forward maps the local sample shard x [nLoc, In] to y [nLoc, Out].
func (l *ModelParallelFC) Forward(c *comm.Comm, x *tensor.Tensor) *tensor.Tensor {
	p := c.Size()
	nLoc := l.sampleRange(c, c.Rank()).Len()
	if x.Dim(0) != nLoc {
		panic(fmt.Sprintf("core: fc input has %d samples, rank owns %d", x.Dim(0), nLoc))
	}
	// Gather the full batch (the data redistribution of Section III-C, from
	// sample-partitioned to replicated).
	counts := make([]int, p)
	for r := 0; r < p; r++ {
		counts[r] = l.sampleRange(c, r).Len() * l.In
	}
	full := c.AllgatherV(x.Data(), counts)
	xFull := tensor.FromSlice(full, l.N, l.In)
	if !l.inference {
		l.xFull = xFull
	}

	// Local block of the distributed GEMM: yBlk [N, outLoc].
	outLoc := l.OutRange.Len()
	yBuf := l.ws.Get(l.N * outLoc)
	yBlk := tensor.FromSlice(*yBuf, l.N, outLoc)
	kernels.FCForward(xFull, l.W, l.Bias, yBlk)

	// Transpose back to sample partitioning: send each rank its samples'
	// slice of my output block.
	send := make([][]float32, p)
	for r := 0; r < p; r++ {
		sr := l.sampleRange(c, r)
		send[r] = yBlk.ExtractRegion(tensor.Region{Off: []int{sr.Lo, 0}, Size: []int{sr.Len(), outLoc}})
	}
	recv := c.AlltoAllV(send)
	l.ws.Put(yBuf)
	y := tensor.New(nLoc, l.Out)
	for r := 0; r < p; r++ {
		or := dist.BlockPartition(l.Out, p, r)
		y.InsertRegion(tensor.Region{Off: []int{0, or.Lo}, Size: []int{nLoc, or.Len()}}, recv[r])
		c.Release(recv[r])
	}
	return y
}

// Backward consumes dy [nLoc, Out] and returns dx [nLoc, In]. DW and DBias
// are complete on return without any allreduce.
func (l *ModelParallelFC) Backward(c *comm.Comm, dy *tensor.Tensor) *tensor.Tensor {
	if l.DW == nil {
		panic("core: Backward on an inference-only FC (NewModelParallelFCInference)")
	}
	if l.xFull == nil {
		panic("core: fc Backward called before Forward")
	}
	p := c.Size()
	outLoc := l.OutRange.Len()
	// All-to-all transpose: collect my output block's gradient for every
	// sample: dyBlk [N, outLoc].
	send := make([][]float32, p)
	for r := 0; r < p; r++ {
		or := dist.BlockPartition(l.Out, p, r)
		send[r] = dy.ExtractRegion(tensor.Region{Off: []int{0, or.Lo}, Size: []int{dy.Dim(0), or.Len()}})
	}
	recv := c.AlltoAllV(send)
	dyBuf := l.ws.Get(l.N * outLoc)
	dyBlk := tensor.FromSlice(*dyBuf, l.N, outLoc)
	for r := 0; r < p; r++ {
		sr := l.sampleRange(c, r)
		dyBlk.InsertRegion(tensor.Region{Off: []int{sr.Lo, 0}, Size: []int{sr.Len(), outLoc}}, recv[r])
		c.Release(recv[r])
	}

	// Local weight gradients (no allreduce needed).
	kernels.FCBackwardParams(l.xFull, dyBlk, l.DW, l.DBias, false)

	// dxFull = sum over output blocks of dyBlk·Wblk; the sum over blocks is
	// an allreduce, after which each rank keeps its own samples.
	dxBuf := l.ws.Get(l.N * l.In)
	dxFull := tensor.FromSlice(*dxBuf, l.N, l.In)
	kernels.FCBackwardData(dyBlk, l.W, dxFull)
	if p > 1 {
		c.Allreduce(dxFull.Data(), comm.OpSum)
	}
	sr := l.sampleRange(c, c.Rank())
	dx := tensor.New(sr.Len(), l.In)
	dx.CopyRegion(
		tensor.Region{Off: []int{0, 0}, Size: []int{sr.Len(), l.In}},
		dxFull,
		tensor.Region{Off: []int{sr.Lo, 0}, Size: []int{sr.Len(), l.In}})
	l.ws.Put(dyBuf)
	l.ws.Put(dxBuf)
	l.xFull = nil
	return dx
}
