package core

import (
	"repro/internal/dist"
)

// Inference-mode constructors: the same distributed layers with no gradient
// state at all. A forward-only (serving) path must not pay for training —
// no DW/DBias/DGamma/DBeta buffers, no stashed activations, no halo buffers
// held between steps — so each layer offers a constructor that allocates
// none of it. Backward on an inference-only layer panics with a clear
// message; weights and running statistics are still exported, so a trained
// checkpoint restores into an inference net unchanged.

// NewConvInference constructs a forward-only distributed convolution: like
// NewConv but without weight-gradient buffers, and Forward releases its
// halo-extended input immediately instead of stashing it for Backward.
func NewConvInference(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *Conv {
	l := newConv(ctx, inDist, f, geom, bias)
	l.inference = true
	return l
}

// NewBatchNormInference constructs a forward-only distributed batch
// normalization layer: Forward normalizes with the running statistics — no
// cross-rank statistics aggregation, no gradient buffers, no stashed input.
// Under a channel-split grid the layer holds gamma/beta and the running
// statistics only for this rank's channel block, exactly like NewBatchNorm.
// The output shard is preallocated and reused across calls (serving
// forwards are zero-alloc warm); it is overwritten by the next Forward.
func NewBatchNormInference(ctx *Ctx, d dist.Dist) *BatchNorm {
	l := newBatchNorm(d, BatchNormGlobal, d.RangeC(ctx.Rank).Len())
	l.inference = true
	l.y = NewDistTensor(d, ctx.Rank)
	return l
}

// NewChannelParallelConvInference is NewChannelParallelConv without any
// gradient state: Backward panics, and the local partial-channel
// convolution runs on kernels.ConvForwardBatched, whose per-column
// accumulation is batch-width independent — the row-stable property dynamic
// micro-batching needs. The completed output still reassociates the channel
// sum across blocks (reduce-scatter in block order), so a channel-split
// serving replica is deterministic run-to-run but not bitwise equal to an
// unsharded one; use the filter split when bitwise parity matters.
func NewChannelParallelConvInference(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *ChannelParallelConv {
	l := newChannelParallelConv(ctx, inDist, f, geom, bias)
	l.inference = true
	return l
}

// NewFilterParallelConvInference is NewFilterParallelConv without any
// gradient state: Backward panics, and the gathered-input convolution runs
// on kernels.ConvForwardBatched. Because every rank sees the complete input
// channels and computes complete weight rows, each rank's filter block is
// bitwise identical to the corresponding rows of a sequential batched
// forward — a filter-sharded serving replica answers bit-for-bit like an
// unsharded one.
func NewFilterParallelConvInference(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *FilterParallelConv {
	l := newFilterParallelConv(ctx, inDist, f, geom, bias)
	l.inference = true
	return l
}

// InvalidatePacked drops the lazily prepacked inference weights; the next
// Forward repacks from the current W. Call after writing new values into W
// (checkpoint restore, rejoin state transfer) on a layer that may already
// have served.
func (l *ChannelParallelConv) InvalidatePacked() { l.wp = nil }

// InvalidatePacked drops the lazily prepacked inference weights and the
// cached bias epilogue; the next Forward repacks from the current W and
// Bias. Call after writing new values into them on a layer that may already
// have served.
func (l *FilterParallelConv) InvalidatePacked() { l.wp, l.epi = nil, nil }
