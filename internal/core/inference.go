package core

import (
	"repro/internal/dist"
)

// Inference-mode constructors: the same distributed layers with no gradient
// state at all. A forward-only (serving) path must not pay for training —
// no DW/DBias/DGamma/DBeta buffers, no stashed activations, no halo buffers
// held between steps — so each layer offers a constructor that allocates
// none of it. Backward on an inference-only layer panics with a clear
// message; weights and running statistics are still exported, so a trained
// checkpoint restores into an inference net unchanged.

// NewConvInference constructs a forward-only distributed convolution: like
// NewConv but without weight-gradient buffers, and Forward releases its
// halo-extended input immediately instead of stashing it for Backward.
func NewConvInference(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *Conv {
	l := newConv(ctx, inDist, f, geom, bias)
	l.inference = true
	return l
}

// NewBatchNormInference constructs a forward-only distributed batch
// normalization layer: Forward normalizes with the (replicated) running
// statistics — no cross-rank statistics aggregation, no gradient buffers,
// no stashed input.
func NewBatchNormInference(d dist.Dist) *BatchNorm {
	l := newBatchNorm(d, BatchNormGlobal, d.C)
	l.inference = true
	return l
}
