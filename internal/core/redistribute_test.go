package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// gridsOfSize enumerates all 4-axis grids (PN, PC, PH, PW) whose product is
// p and whose blocks fit the given global extents.
func gridsOfSize(p, n, c, h, w int) []dist.Grid {
	var out []dist.Grid
	for pn := 1; pn <= p; pn++ {
		if p%pn != 0 || pn > n {
			continue
		}
		for pc := 1; pc <= p/pn; pc++ {
			if (p/pn)%pc != 0 || pc > c {
				continue
			}
			for ph := 1; ph <= p/(pn*pc); ph++ {
				if (p/(pn*pc))%ph != 0 || ph > h {
					continue
				}
				pw := p / (pn * pc * ph)
				if pw > w {
					continue
				}
				out = append(out, dist.Grid{PN: pn, PC: pc, PH: ph, PW: pw})
			}
		}
	}
	return out
}

// TestRedistributeRoundTripProperty: for random global tensors and random
// placement pairs — channel splits included — redistributing src -> dst
// must gather to exactly the global tensor, and the round trip src -> dst
// -> src must be bitwise identical to the original shards (Redistribute is
// a pure permutation of the data).
func TestRedistributeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 25; iter++ {
		p := []int{1, 2, 4, 4, 8}[rng.Intn(5)]
		n := 1 + rng.Intn(4)
		c := 1 + rng.Intn(6)
		h := 1 + rng.Intn(7)
		w := 1 + rng.Intn(7)
		// Ensure at least one grid of size p exists (pad extents up).
		for len(gridsOfSize(p, n, c, h, w)) == 0 {
			n++
			c++
			h++
			w++
		}
		grids := gridsOfSize(p, n, c, h, w)
		src := grids[rng.Intn(len(grids))]
		dst := grids[rng.Intn(len(grids))]

		global := tensor.New(n, c, h, w)
		global.FillRandN(int64(1000+iter), 1)
		srcD := dist.Dist{Grid: src, N: n, C: c, H: h, W: w}
		dstD := dist.Dist{Grid: dst, N: n, C: c, H: h, W: w}
		shards := Scatter(global, srcD)

		mid := make([]DistTensor, p)
		back := make([]DistTensor, p)
		var mu sync.Mutex
		world := comm.NewWorld(p)
		world.Run(func(cm *comm.Comm) {
			ctx := NewCtx(cm, src)
			out := Redistribute(ctx, shards[ctx.Rank], dstD)
			rt := Redistribute(ctx, out, srcD)
			mu.Lock()
			mid[ctx.Rank] = out
			back[ctx.Rank] = rt
			mu.Unlock()
		})

		// The redistributed tensor must gather to the global bitwise.
		got := Gather(mid)
		for i, v := range global.Data() {
			if got.Data()[i] != v {
				t.Fatalf("iter %d (%v -> %v, %dx%dx%dx%d): gathered[%d] = %v, want %v",
					iter, src, dst, n, c, h, w, i, got.Data()[i], v)
			}
		}
		// The round trip must be bitwise identical shard by shard.
		for r := 0; r < p; r++ {
			want := shards[r].Local.Data()
			gotb := back[r].Local.Data()
			for i := range want {
				if gotb[i] != want[i] {
					t.Fatalf("iter %d (%v -> %v): rank %d round-trip[%d] = %v, want %v",
						iter, src, dst, r, i, gotb[i], want[i])
				}
			}
		}
	}
}

// TestRedistributeAlongsideHaloTraffic is the deadlock regression for the
// placement shuffles: each rank runs an overlapped spatial convolution
// (whose halo exchange rides the communication proxy) with a non-blocking
// allreduce outstanding, then redistributes the conv output onto a
// channel-split placement and back, then completes the backward halo
// exchange — the exact interleaving StrategyNet produces at placement
// boundaries. The test passes iff it terminates.
func TestRedistributeAlongsideHaloTraffic(t *testing.T) {
	g := dist.Grid{PN: 1, PH: 2, PW: 2}
	chanG := dist.Grid{PN: 1, PC: 4, PH: 1, PW: 1}
	n, c, h, w, f := 2, 4, 8, 8, 4
	geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
	inD := dist.Dist{Grid: g, N: n, C: c, H: h, W: w}
	x := tensor.New(n, c, h, w)
	x.FillRandN(5, 1)
	shards := Scatter(x, inD)

	world := comm.NewWorld(g.Size())
	world.Run(func(cm *comm.Comm) {
		ctx := NewCtx(cm, g)
		l := NewConv(ctx, inD, f, geom, false)
		l.W.FillRandN(6, 0.5)
		for step := 0; step < 3; step++ {
			// Outstanding non-blocking collective on the same proxy the halo
			// exchange uses.
			buf := make([]float32, 1024)
			req := ctx.C.IAllreduce(buf, comm.OpSum)
			y := l.Forward(ctx, shards[ctx.Rank])
			// Shuffle the output through a channel-split placement and back
			// while the proxy still holds the allreduce.
			chanD := dist.Dist{Grid: chanG, N: y.Dist.N, C: y.Dist.C, H: y.Dist.H, W: y.Dist.W}
			mid := Redistribute(ctx, y, chanD)
			back := Redistribute(ctx, mid, y.Dist)
			dy := DistTensor{Dist: back.Dist, Rank: back.Rank, Local: back.Local}
			l.Backward(ctx, dy)
			req.Wait()
		}
	})
}
