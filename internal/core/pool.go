package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// MaxPool is a distributed max-pooling layer. Forward needs the same halo
// exchange as convolution; backward scatters through the recorded argmax
// positions into the halo-extended buffer and reverse-exchanges boundary
// contributions back to their owners.
type MaxPool struct {
	Geom    dist.ConvGeom
	InDist  dist.Dist
	OutDist dist.Dist

	fwdPlan *HaloPlan
	tag     int

	argmax []int32
	extGeo Ext // geometry (not data) of the forward ext buffer
}

// NewMaxPool constructs a distributed max-pooling layer.
func NewMaxPool(ctx *Ctx, inDist dist.Dist, geom dist.ConvGeom) *MaxPool {
	outH, outW := geom.OutSize(inDist.H), geom.OutSize(inDist.W)
	if outH < inDist.Grid.PH || outW < inDist.Grid.PW {
		panic(fmt.Sprintf("core: pool output %dx%d too small for grid %v", outH, outW, inDist.Grid))
	}
	l := &MaxPool{
		Geom:    geom,
		InDist:  inDist,
		OutDist: dist.Dist{Grid: inDist.Grid, N: inDist.N, C: inDist.C, H: outH, W: outW},
		tag:     ctx.AllocTags(4),
	}
	l.fwdPlan = forwardPlan(inDist, ctx.Rank, geom, outH, outW)
	return l
}

// Forward computes the local pooled shard.
func (l *MaxPool) Forward(ctx *Ctx, x DistTensor) DistTensor {
	if !x.Dist.SameLayout(l.InDist) {
		panic(fmt.Sprintf("core: pool input dist %v, want %v", x.Dist, l.InDist))
	}
	ext := l.fwdPlan.Run(ctx, x.Local, l.tag)
	y := NewDistTensor(l.OutDist, ctx.Rank)
	l.argmax = make([]int32, y.Local.Size())
	outH := l.OutDist.RangeH(ctx.Rank)
	outW := l.OutDist.RangeW(ctx.Rank)
	kernels.MaxPoolForwardRegion(ext.T, y.Local, l.Geom.K, l.Geom.S, l.Geom.Pad,
		ext.HLo, ext.WLo, outH.Lo, outW.Lo, l.InDist.H, l.InDist.W, l.argmax)
	l.extGeo = Ext{T: nil, HLo: ext.HLo, WLo: ext.WLo}
	l.extGeo.T = tensor.New(ext.T.Shape()...) // reuse as the scatter target
	return y
}

// Backward scatters dy through the argmax indices and reverse-exchanges
// boundary contributions (windows spanning a partition boundary scatter into
// halo cells owned by a neighbor).
func (l *MaxPool) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	if l.argmax == nil {
		panic("core: pool Backward called before Forward")
	}
	dxExt := l.extGeo
	kernels.MaxPoolBackward(dy.Local, l.argmax, dxExt.T)
	dx := NewDistTensor(l.InDist, ctx.Rank)
	l.fwdPlan.RunReverse(ctx, dxExt, dx.Local, l.tag+2)
	l.argmax = nil
	l.extGeo = Ext{}
	return dx
}

// GlobalAvgPool averages each channel's full spatial plane: x [N,C,H,W] ->
// y [N,C,1,1]. Under spatial parallelism each rank averages its shard and an
// allreduce over the spatial group completes the sum; the result is
// replicated within the group, so the output distribution collapses the
// spatial grid dimensions.
type GlobalAvgPool struct {
	InDist  dist.Dist
	OutDist dist.Dist
}

// NewGlobalAvgPool constructs the layer. The output is distributed over a
// degenerate spatial grid (PH=PW=1) replicated across this rank's spatial
// group: every rank of the group holds the same [nLoc, C, 1, 1] tensor.
func NewGlobalAvgPool(ctx *Ctx, inDist dist.Dist) *GlobalAvgPool {
	out := dist.Dist{Grid: inDist.Grid, N: inDist.N, C: inDist.C, H: inDist.Grid.PH, W: inDist.Grid.PW}
	return &GlobalAvgPool{InDist: inDist, OutDist: out}
}

// Forward computes the per-channel spatial mean. The OutDist trick: global
// output extent equals the grid extents, so every rank owns exactly a 1x1
// block and holds the replicated mean there.
func (l *GlobalAvgPool) Forward(ctx *Ctx, x DistTensor) DistTensor {
	nLoc := x.Local.Dim(0)
	c := x.Local.Dim(1)
	sums := make([]float32, nLoc*c)
	xd := x.Local.Data()
	plane := x.Local.Dim(2) * x.Local.Dim(3)
	for i := 0; i < nLoc*c; i++ {
		var s float64
		for _, v := range xd[i*plane : (i+1)*plane] {
			s += float64(v)
		}
		sums[i] = float32(s)
	}
	if ctx.Spatial.Size() > 1 {
		ctx.Spatial.Allreduce(sums, comm.OpSum)
	}
	y := NewDistTensor(l.OutDist, ctx.Rank)
	scale := 1 / float32(l.InDist.H*l.InDist.W)
	for i, s := range sums {
		y.Local.Data()[i] = s * scale
	}
	return y
}

// Backward spreads dy/(H*W) uniformly over the local spatial shard.
func (l *GlobalAvgPool) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	dx := NewDistTensor(l.InDist, ctx.Rank)
	nLoc := dx.Local.Dim(0)
	c := dx.Local.Dim(1)
	plane := dx.Local.Dim(2) * dx.Local.Dim(3)
	scale := 1 / float32(l.InDist.H*l.InDist.W)
	dxd := dx.Local.Data()
	dyd := dy.Local.Data()
	for i := 0; i < nLoc*c; i++ {
		g := dyd[i] * scale
		row := dxd[i*plane : (i+1)*plane]
		for j := range row {
			row[j] = g
		}
	}
	return dx
}

// AvgPool is a distributed average-pooling layer (padding excluded from the
// divisor). Forward shares the convolutional halo exchange; backward
// scatters uniform shares into the halo-extended buffer and
// reverse-exchanges boundary contributions, like MaxPool.
type AvgPool struct {
	Geom    dist.ConvGeom
	InDist  dist.Dist
	OutDist dist.Dist

	fwdPlan *HaloPlan
	tag     int
	haveFwd bool
	extGeo  Ext
}

// NewAvgPool constructs a distributed average-pooling layer.
func NewAvgPool(ctx *Ctx, inDist dist.Dist, geom dist.ConvGeom) *AvgPool {
	outH, outW := geom.OutSize(inDist.H), geom.OutSize(inDist.W)
	if outH < inDist.Grid.PH || outW < inDist.Grid.PW {
		panic(fmt.Sprintf("core: avgpool output %dx%d too small for grid %v", outH, outW, inDist.Grid))
	}
	l := &AvgPool{
		Geom:    geom,
		InDist:  inDist,
		OutDist: dist.Dist{Grid: inDist.Grid, N: inDist.N, C: inDist.C, H: outH, W: outW},
		tag:     ctx.AllocTags(4),
	}
	l.fwdPlan = forwardPlan(inDist, ctx.Rank, geom, outH, outW)
	return l
}

// Forward computes the local pooled shard.
func (l *AvgPool) Forward(ctx *Ctx, x DistTensor) DistTensor {
	if !x.Dist.SameLayout(l.InDist) {
		panic(fmt.Sprintf("core: avgpool input dist %v, want %v", x.Dist, l.InDist))
	}
	ext := l.fwdPlan.Run(ctx, x.Local, l.tag)
	y := NewDistTensor(l.OutDist, ctx.Rank)
	outH := l.OutDist.RangeH(ctx.Rank)
	outW := l.OutDist.RangeW(ctx.Rank)
	kernels.AvgPoolForwardRegion(ext.T, y.Local, l.Geom.K, l.Geom.S, l.Geom.Pad,
		ext.HLo, ext.WLo, outH.Lo, outW.Lo, l.InDist.H, l.InDist.W)
	l.extGeo = Ext{T: tensor.New(ext.T.Shape()...), HLo: ext.HLo, WLo: ext.WLo}
	l.haveFwd = true
	return y
}

// Backward distributes dy/count into the halo-extended buffer and
// reverse-exchanges boundary contributions back to their owners.
func (l *AvgPool) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	if !l.haveFwd {
		panic("core: avgpool Backward called before Forward")
	}
	outH := l.OutDist.RangeH(ctx.Rank)
	outW := l.OutDist.RangeW(ctx.Rank)
	kernels.AvgPoolBackwardRegion(dy.Local, l.extGeo.T, l.Geom.K, l.Geom.S, l.Geom.Pad,
		l.extGeo.HLo, l.extGeo.WLo, outH.Lo, outW.Lo, l.InDist.H, l.InDist.W)
	dx := NewDistTensor(l.InDist, ctx.Rank)
	l.fwdPlan.RunReverse(ctx, l.extGeo, dx.Local, l.tag+2)
	l.haveFwd = false
	l.extGeo = Ext{}
	return dx
}
