package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// This file implements the channel and filter parallelism of Section III-D
// as first-class distributed layers over the 4-axis Placement API: both
// consume and produce DistTensors whose channel dimension is blocked over
// the grid's PC axis (spatial dimensions whole), so they compose with
// sample parallelism on the same grid and with any other placement through
// core.Redistribute. The activation collectives run over ctx.Chan (the
// ranks of one channel group) with the rank-order-stable ring, and the
// weight-gradient reductions over ctx.ChanPeers (the ranks holding the same
// weight shard), so training is deterministic and scheduling-independent.
//
// All step-transient buffers (the full-F partial outputs, gathered
// activations, and output/error shards) are acquired once from the
// kernels.Workspace arena at construction and reused, so warm Forward and
// Backward calls allocate nothing.

// checkChannelGrid validates the common constraints of the channel/filter
// layers and returns the output distribution.
func checkChannelGrid(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom) dist.Dist {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if inDist.Grid.Norm() != ctx.Grid {
		panic(fmt.Sprintf("core: input grid %v does not match context grid %v", inDist.Grid, ctx.Grid))
	}
	g := ctx.Grid
	if g.PH != 1 || g.PW != 1 {
		panic(fmt.Sprintf("core: channel/filter-parallel conv requires whole spatial dimensions, got grid %v", g))
	}
	if f < g.ChannelWays() {
		panic(fmt.Sprintf("core: %d filters cannot be blocked %d ways", f, g.ChannelWays()))
	}
	if err := inDist.Validate(); err != nil {
		panic(err)
	}
	out := dist.Dist{Grid: g, N: inDist.N, C: f, H: geom.OutSize(inDist.H), W: geom.OutSize(inDist.W)}
	if err := out.Validate(); err != nil {
		panic(err)
	}
	return out
}

// regionScratch is persistent Off/Size storage for the dim-1 block copies,
// so warm Forward/Backward calls build tensor.Regions without allocating.
type regionScratch struct {
	aOff, aSize, bOff, bSize [4]int
}

// pair fills the scratch and returns two regions backed by it.
func (r *regionScratch) pair(aOff, aSize, bOff, bSize [4]int) (a, b tensor.Region) {
	r.aOff, r.aSize, r.bOff, r.bSize = aOff, aSize, bOff, bSize
	return tensor.Region{Off: r.aOff[:], Size: r.aSize[:]},
		tensor.Region{Off: r.bOff[:], Size: r.bSize[:]}
}

// one fills the scratch and returns a single region backed by it.
func (r *regionScratch) one(off, size [4]int) tensor.Region {
	r.aOff, r.aSize = off, size
	return tensor.Region{Off: r.aOff[:], Size: r.aSize[:]}
}

// gatherDim1 assembles the channel-group blocks of a tensor partitioned on
// dimension 1: every rank of ctx.Chan contributes its local block and
// receives everyone else's, inserting block q at ranges[q]. Message
// payloads stage through the comm pool and regions through the caller's
// scratch, so a warm gather allocates nothing.
func gatherDim1(ctx *Ctx, local *tensor.Tensor, full *tensor.Tensor, ranges []dist.Range, tag int, rg *regionScratch) {
	ch := ctx.Chan
	p := ch.Size()
	me := ch.Rank()
	n, h, w := full.Dim(0), full.Dim(2), full.Dim(3)
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		buf := comm.GetBuf(local.Size())
		copy(buf, local.Data())
		ch.SendNoCopy(q, tag, buf)
	}
	full.InsertRegion(rg.one([4]int{0, ranges[me].Lo, 0, 0}, [4]int{n, ranges[me].Len(), h, w}), local.Data())
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		data := ch.Recv(q, tag)
		if want := n * ranges[q].Len() * h * w; len(data) != want {
			panic(fmt.Sprintf("core: channel gather got %d words from block %d, want %d", len(data), q, want))
		}
		full.InsertRegion(rg.one([4]int{0, ranges[q].Lo, 0, 0}, [4]int{n, ranges[q].Len(), h, w}), data)
		ch.Release(data)
	}
}

// blockRanges precomputes the channel blocks of total over ways parts.
func blockRanges(total, ways int) []dist.Range {
	out := make([]dist.Range, ways)
	for j := range out {
		out[j] = dist.BlockPartition(total, ways, j)
	}
	return out
}

// ChannelParallelConv partitions the input-channel dimension C: each
// channel group holds the weight slice W[:, cBlk] and this rank's channel
// shard of x, computes a partial output over all filters, and completes the
// channel sum of Eq. 1 with an allreduce over ctx.Chan — the forward
// activation allreduce the performance model prices. The completed output
// is re-blocked on its own channel (filter) dimension, so OutDist is again
// a plain channel-partitioned distribution. Backward-data is local (dx
// inherits the channel partition); the full dy is assembled with an
// allgather (the adjoint of extracting this rank's filter block).
type ChannelParallelConv struct {
	Geom    dist.ConvGeom
	InDist  dist.Dist
	OutDist dist.Dist
	CRange  dist.Range // input channels owned by this rank
	FRange  dist.Range // output filters owned by this rank

	W     *tensor.Tensor // [F, cLoc, K, K]
	DW    *tensor.Tensor
	Bias  []float32 // optional, [F], replicated within the channel group
	DBias []float32

	// Algo selects the local convolution kernel.
	Algo kernels.ConvAlgo
	// DeferAllreduce leaves the dw/dbias reduction over ctx.ChanPeers to
	// the caller; when false Backward completes gradients before returning.
	DeferAllreduce bool

	// inference marks a forward-only layer (NewChannelParallelConvInference):
	// no gradient buffers or error shard exist, Backward panics, and the
	// local partial runs on the batched row-stable kernel so serving answers
	// are independent of micro-batch composition.
	inference bool
	// wp caches the prepacked weights for the inference forward, built
	// lazily from W and dropped by InvalidatePacked after a restore.
	wp *kernels.PackedB

	tag int
	rg  regionScratch

	fBlocks  []dist.Range   // filter block of every channel-group rank
	rsCounts []int          // per-rank reduce-scatter chunk lengths (fBlocks * plane)
	full     *tensor.Tensor // [nLoc, F, OH, OW]: forward partial, backward dy
	fullBuf  *[]float32
	y        DistTensor // persistent output shard, overwritten each step
	dx       DistTensor // persistent error shard
	x        *tensor.Tensor
}

// NewChannelParallelConv constructs the layer for inputs distributed as
// inDist (channel axis blocked PC ways, spatial whole) producing f filters.
func NewChannelParallelConv(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *ChannelParallelConv {
	l := newChannelParallelConv(ctx, inDist, f, geom, bias)
	l.DW = tensor.New(f, l.CRange.Len(), geom.K, geom.K)
	if bias {
		l.DBias = make([]float32, f)
	}
	l.dx = NewDistTensor(inDist, ctx.Rank)
	return l
}

func newChannelParallelConv(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *ChannelParallelConv {
	outDist := checkChannelGrid(ctx, inDist, f, geom)
	cr := inDist.RangeC(ctx.Rank)
	fr := outDist.RangeC(ctx.Rank)
	nLoc := inDist.RangeN(ctx.Rank).Len()
	ws := kernels.DefaultWorkspace()
	l := &ChannelParallelConv{
		Geom: geom, InDist: inDist, OutDist: outDist,
		CRange: cr, FRange: fr,
		W:    tensor.New(f, cr.Len(), geom.K, geom.K),
		Algo: kernels.ConvAuto,
		tag:  ctx.AllocTags(2),
	}
	if bias {
		l.Bias = make([]float32, f)
	}
	l.fBlocks = blockRanges(f, ctx.Grid.ChannelWays())
	plane := outDist.H * outDist.W
	l.rsCounts = make([]int, len(l.fBlocks))
	for q, fb := range l.fBlocks {
		l.rsCounts[q] = fb.Len() * plane
	}
	l.fullBuf = ws.Get(nLoc * f * plane)
	l.full = tensor.FromSlice(*l.fullBuf, nLoc, f, outDist.H, outDist.W)
	l.y = NewDistTensor(outDist, ctx.Rank)
	return l
}

// Forward consumes this rank's channel shard x [nLoc, cLoc, H, W] and
// returns the output blocked on filters [nLoc, fLoc, OH, OW]. The returned
// shard is owned by the layer and overwritten by the next step.
//
// The channel sum of Eq. 1 completes with a rank-order-stable
// reduce-scatter over ctx.Chan: each rank receives only its own filter
// block — half the wire cost of the earlier full allreduce — and the
// association order (block 0, 1, ..., left-associated) is exactly the
// stable allreduce's, so the produced bits are unchanged.
func (l *ChannelParallelConv) Forward(ctx *Ctx, x DistTensor) DistTensor {
	if !x.Dist.SameLayout(l.InDist) {
		panic(fmt.Sprintf("core: channel-parallel conv input dist %v, want %v", x.Dist, l.InDist))
	}
	if l.inference {
		// Prepacked weights, no epilogue: the bias belongs to the complete
		// filter sum, so it is added after the reduce-scatter below. The
		// prepacked kernel's per-element accumulation order matches
		// ConvForwardBatched's exactly, so sharded answers keep their bitwise
		// identity with unsharded serving.
		if l.wp == nil {
			l.wp = kernels.PackConvWeights(l.W)
		}
		kernels.ConvForwardBatchedPrepacked(x.Local, l.wp, l.Geom.K, nil, l.full, l.Geom.S, l.Geom.Pad, nil, 0)
	} else {
		kernels.ConvForward(x.Local, l.W, nil, l.full, l.Geom.S, l.Geom.Pad, l.Algo)
	}
	reduceScatterOwnBlock(ctx, l.full, l.y.Local, l.rsCounts)
	if l.Bias != nil {
		addBiasBlock(l.y.Local, l.Bias[l.FRange.Lo:l.FRange.Hi])
	}
	if !l.inference {
		l.x = x.Local
	}
	return l.y
}

// reduceScatterOwnBlock completes a partial distributed on dimension 1:
// full is [nLoc, D, h, w] holding this rank's partial over the full extent
// D, own is [nLoc, dLoc, h, w], and counts give every chan-group rank's
// dim-1 block length in words per sample. One slab-aware stable
// reduce-scatter (one message per peer carrying every sample's chunk)
// delivers exactly this rank's block of every sample, reduced in rank
// order. With a single-rank channel group it degenerates to a copy of the
// owned block.
func reduceScatterOwnBlock(ctx *Ctx, full, own *tensor.Tensor, counts []int) {
	fd, od := full.Data(), own.Data()
	if ctx.Chan.Size() == 1 {
		copy(od, fd)
		return
	}
	mine := ctx.Chan.ReduceScatterStableSlabs(fd, full.Dim(0), counts, comm.OpSum)
	copy(od, mine)
	ctx.Chan.Release(mine)
}

// Backward consumes this rank's filter block of dy and returns dx for this
// rank's channel shard. The full dy is assembled over ctx.Chan; dw and dx
// are then purely local, and the weight-gradient sum over sample groups is
// completed over ctx.ChanPeers (unless deferred).
func (l *ChannelParallelConv) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	if l.DW == nil {
		panic("core: Backward on an inference-only channel-parallel conv (NewChannelParallelConvInference)")
	}
	if l.x == nil {
		panic("core: channel-parallel Backward before Forward")
	}
	if !dy.Dist.SameLayout(l.OutDist) {
		panic(fmt.Sprintf("core: channel-parallel conv dy dist %v, want %v", dy.Dist, l.OutDist))
	}
	gatherDim1(ctx, dy.Local, l.full, l.fBlocks, l.tag, &l.rg)
	kernels.ConvBackwardFilter(l.x, l.full, l.DW, l.Geom.S, l.Geom.Pad, false)
	if l.DBias != nil {
		kernels.BiasBackward(l.full, l.DBias, false)
	}
	kernels.ConvBackwardData(l.full, l.W, l.dx.Local, l.Geom.S, l.Geom.Pad)
	if !l.DeferAllreduce {
		l.ReduceGradients(ctx)
	}
	l.x = nil
	return l.dx
}

// ReduceGradients completes the weight-gradient sum over the ranks holding
// this weight shard (same channel block, different sample groups).
func (l *ChannelParallelConv) ReduceGradients(ctx *Ctx) {
	if ctx.ChanPeers.Size() == 1 {
		return
	}
	ctx.ChanPeers.AllreduceAlgo(l.DW.Data(), comm.OpSum, comm.AllreduceStableRing)
	if l.DBias != nil {
		ctx.ChanPeers.AllreduceAlgo(l.DBias, comm.OpSum, comm.AllreduceStableRing)
	}
}

// GradientWords returns the deferred-allreduce payload in words.
func (l *ChannelParallelConv) GradientWords() int {
	n := l.DW.Size()
	if l.DBias != nil {
		n += len(l.DBias)
	}
	return n
}

// FilterParallelConv partitions the output-filter dimension F: each channel
// group holds W[fBlk, :] for a block of filters, allgathers the partitioned
// input channels over ctx.Chan into the full input, and computes its filter
// block with no further forward communication, so the output emerges
// blocked on its channel (filter) dimension. Backward-data requires the sum
// over filter blocks, realized as an allreduce over ctx.Chan — the backward
// data allreduce the performance model prices; weight gradients are local
// to the filter block (summed over sample groups via ctx.ChanPeers).
type FilterParallelConv struct {
	Geom    dist.ConvGeom
	InDist  dist.Dist
	OutDist dist.Dist
	CRange  dist.Range // input channels owned by this rank
	FRange  dist.Range // output filters owned by this rank

	W     *tensor.Tensor // [fLoc, C, K, K]
	DW    *tensor.Tensor
	Bias  []float32 // optional, [fLoc]
	DBias []float32

	// Algo selects the local convolution kernel.
	Algo kernels.ConvAlgo
	// DeferAllreduce leaves the dw/dbias reduction over ctx.ChanPeers to
	// the caller.
	DeferAllreduce bool

	// inference marks a forward-only layer (NewFilterParallelConvInference):
	// no gradient buffers or error shard exist, Backward panics, and the
	// gathered-input convolution runs on the batched row-stable kernel —
	// because its weight rows and input channels are complete, the produced
	// filter block is bitwise identical to the same rows of a sequential
	// ConvForwardBatched, which is what makes filter-sharded serving
	// replicas answer identically to unsharded ones.
	inference bool
	// wp caches the prepacked weights for the inference forward, built
	// lazily from W and dropped by InvalidatePacked after a restore.
	wp *kernels.PackedB
	// epi folds the filter-block bias into the GEMM store (inference only).
	epi *kernels.Epilogue

	tag int
	rg  regionScratch

	cBlocks  []dist.Range // input-channel block of every channel-group rank
	rsCounts []int        // per-rank reduce-scatter chunk lengths (cBlocks * plane)
	// xFull holds the gathered input in forward and is reused as the
	// partial dx accumulator in backward (backward-filter consumes it
	// before backward-data overwrites it).
	xFull    *tensor.Tensor // [nLoc, C, H, W]
	xFullBuf *[]float32
	y        DistTensor
	dx       DistTensor
	haveX    bool
}

// NewFilterParallelConv constructs the layer for inputs distributed as
// inDist (channel axis blocked PC ways, spatial whole) producing f filters.
func NewFilterParallelConv(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *FilterParallelConv {
	l := newFilterParallelConv(ctx, inDist, f, geom, bias)
	l.DW = tensor.New(l.FRange.Len(), inDist.C, geom.K, geom.K)
	if bias {
		l.DBias = make([]float32, l.FRange.Len())
	}
	l.dx = NewDistTensor(inDist, ctx.Rank)
	return l
}

func newFilterParallelConv(ctx *Ctx, inDist dist.Dist, f int, geom dist.ConvGeom, bias bool) *FilterParallelConv {
	outDist := checkChannelGrid(ctx, inDist, f, geom)
	cr := inDist.RangeC(ctx.Rank)
	fr := outDist.RangeC(ctx.Rank)
	nLoc := inDist.RangeN(ctx.Rank).Len()
	ws := kernels.DefaultWorkspace()
	l := &FilterParallelConv{
		Geom: geom, InDist: inDist, OutDist: outDist,
		CRange: cr, FRange: fr,
		W:    tensor.New(fr.Len(), inDist.C, geom.K, geom.K),
		Algo: kernels.ConvAuto,
		tag:  ctx.AllocTags(2),
	}
	if bias {
		l.Bias = make([]float32, fr.Len())
	}
	l.cBlocks = blockRanges(inDist.C, ctx.Grid.ChannelWays())
	l.rsCounts = make([]int, len(l.cBlocks))
	for q, cb := range l.cBlocks {
		l.rsCounts[q] = cb.Len() * inDist.H * inDist.W
	}
	l.xFullBuf = ws.Get(nLoc * inDist.C * inDist.H * inDist.W)
	l.xFull = tensor.FromSlice(*l.xFullBuf, nLoc, inDist.C, inDist.H, inDist.W)
	l.y = NewDistTensor(outDist, ctx.Rank)
	return l
}

// Forward consumes this rank's channel shard x [nLoc, cLoc, H, W] and
// returns this rank's filter block [nLoc, fLoc, OH, OW]. The returned shard
// is owned by the layer and overwritten by the next step.
func (l *FilterParallelConv) Forward(ctx *Ctx, x DistTensor) DistTensor {
	if !x.Dist.SameLayout(l.InDist) {
		panic(fmt.Sprintf("core: filter-parallel conv input dist %v, want %v", x.Dist, l.InDist))
	}
	gatherDim1(ctx, x.Local, l.xFull, l.cBlocks, l.tag, &l.rg)
	if l.inference {
		// Prepacked weights with the filter-block bias folded into the GEMM
		// store epilogue (bitwise the unshuffle's v + bias[f] fold).
		if l.wp == nil {
			l.wp = kernels.PackConvWeights(l.W)
			if l.Bias != nil {
				l.epi = &kernels.Epilogue{Bias: l.Bias}
			}
		}
		kernels.ConvForwardBatchedPrepacked(l.xFull, l.wp, l.Geom.K, l.epi, l.y.Local, l.Geom.S, l.Geom.Pad, nil, 0)
	} else {
		kernels.ConvForward(l.xFull, l.W, l.Bias, l.y.Local, l.Geom.S, l.Geom.Pad, l.Algo)
		l.haveX = true
	}
	return l.y
}

// Backward consumes this rank's filter block of dy and returns dx for this
// rank's channel shard: dw/dbias are local to the filter block, and the sum
// of the partial dx over filter blocks completes with a rank-order-stable
// reduce-scatter over ctx.Chan — this rank receives only its own channel
// slice, at half the wire cost of the earlier full allreduce, with the same
// association order (so the produced bits are unchanged).
func (l *FilterParallelConv) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	if l.DW == nil {
		panic("core: Backward on an inference-only filter-parallel conv (NewFilterParallelConvInference)")
	}
	if !l.haveX {
		panic("core: filter-parallel Backward before Forward")
	}
	if !dy.Dist.SameLayout(l.OutDist) {
		panic(fmt.Sprintf("core: filter-parallel conv dy dist %v, want %v", dy.Dist, l.OutDist))
	}
	kernels.ConvBackwardFilter(l.xFull, dy.Local, l.DW, l.Geom.S, l.Geom.Pad, false)
	if l.DBias != nil {
		kernels.BiasBackward(dy.Local, l.DBias, false)
	}
	// xFull has served backward-filter; reuse its storage for the partial
	// full-channel dx (ConvBackwardData overwrites as it accumulates).
	dxFull := l.xFull
	kernels.ConvBackwardData(dy.Local, l.W, dxFull, l.Geom.S, l.Geom.Pad)
	reduceScatterOwnBlock(ctx, dxFull, l.dx.Local, l.rsCounts)
	if !l.DeferAllreduce {
		l.ReduceGradients(ctx)
	}
	l.haveX = false
	return l.dx
}

// ReduceGradients completes the weight-gradient sum over the ranks holding
// this filter block (same channel coordinate, different sample groups).
func (l *FilterParallelConv) ReduceGradients(ctx *Ctx) {
	if ctx.ChanPeers.Size() == 1 {
		return
	}
	ctx.ChanPeers.AllreduceAlgo(l.DW.Data(), comm.OpSum, comm.AllreduceStableRing)
	if l.DBias != nil {
		ctx.ChanPeers.AllreduceAlgo(l.DBias, comm.OpSum, comm.AllreduceStableRing)
	}
}

// GradientWords returns the deferred-allreduce payload in words.
func (l *FilterParallelConv) GradientWords() int {
	n := l.DW.Size()
	if l.DBias != nil {
		n += len(l.DBias)
	}
	return n
}

// addBiasBlock adds bias[f] to every (sample, filter) plane of y
// [n, f, oh, ow].
func addBiasBlock(y *tensor.Tensor, bias []float32) {
	s := y.Shape()
	n, f, plane := s[0], s[1], s[2]*s[3]
	yd := y.Data()
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			row := yd[(ni*f+fi)*plane : (ni*f+fi+1)*plane]
			b := bias[fi]
			for i := range row {
				row[i] += b
			}
		}
	}
}
