package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// This file implements the channel and filter parallelism sketched in
// Section III-D (deferred to future work in the paper). Both operate over a
// 1-D communicator; spatial dimensions stay whole. They compose with
// sample parallelism the same way spatial parallelism does.

// FilterParallelConv partitions the F dimension of the weights: each
// processor holds w for a block of filters, inputs x are replicated within
// the group, and the output y emerges partitioned on its channel (filter)
// dimension with no forward communication. Backward-data requires a
// reduce (sum over filter blocks), realized as an allreduce; weight
// gradients are purely local.
type FilterParallelConv struct {
	Geom   dist.ConvGeom
	C, F   int        // global channel/filter counts
	FRange dist.Range // filters owned by this rank
	W      *tensor.Tensor
	DW     *tensor.Tensor

	x *tensor.Tensor
}

// NewFilterParallelConv constructs the layer on communicator c.
func NewFilterParallelConv(c *comm.Comm, inC, f int, geom dist.ConvGeom) *FilterParallelConv {
	if f < c.Size() {
		panic(fmt.Sprintf("core: filter-parallel conv with %d filters on %d ranks", f, c.Size()))
	}
	fr := dist.BlockPartition(f, c.Size(), c.Rank())
	return &FilterParallelConv{
		Geom: geom, C: inC, F: f, FRange: fr,
		W:  tensor.New(fr.Len(), inC, geom.K, geom.K),
		DW: tensor.New(fr.Len(), inC, geom.K, geom.K),
	}
}

// Forward computes this rank's filter block: y [N, fLoc, OH, OW]. x must be
// the full (replicated) input.
func (l *FilterParallelConv) Forward(c *comm.Comm, x *tensor.Tensor) *tensor.Tensor {
	xs := x.Shape()
	oh, ow := l.Geom.OutSize(xs[2]), l.Geom.OutSize(xs[3])
	y := tensor.New(xs[0], l.FRange.Len(), oh, ow)
	kernels.ConvForward(x, l.W, nil, y, l.Geom.S, l.Geom.Pad, kernels.ConvAuto)
	l.x = x
	return y
}

// Backward consumes this rank's filter block of dy and returns the full dx
// (identical on every rank after the allreduce). DW is complete locally.
func (l *FilterParallelConv) Backward(c *comm.Comm, dy *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("core: filter-parallel Backward before Forward")
	}
	kernels.ConvBackwardFilter(l.x, dy, l.DW, l.Geom.S, l.Geom.Pad, false)
	dx := tensor.New(l.x.Shape()...)
	kernels.ConvBackwardData(dy, l.W, dx, l.Geom.S, l.Geom.Pad)
	if c.Size() > 1 {
		c.Allreduce(dx.Data(), comm.OpSum) // sum of per-filter-block contributions
	}
	l.x = nil
	return dx
}

// ChannelParallelConv partitions the C dimension: each processor holds the
// input channels of a block and the matching weight slice w[:, cBlk]. Each
// computes a partial y over all filters; the channel sum of Eq. 1 is
// completed with an allreduce (the paper notes a reduce-scatter could
// instead leave y filter-partitioned). Backward-data is local (dx inherits
// the channel partition); weight gradients are local to each channel block.
type ChannelParallelConv struct {
	Geom   dist.ConvGeom
	C, F   int
	CRange dist.Range     // input channels owned by this rank
	W      *tensor.Tensor // [F, cLoc, K, K]
	DW     *tensor.Tensor

	x *tensor.Tensor // local channel shard [N, cLoc, H, W]
}

// NewChannelParallelConv constructs the layer on communicator c.
func NewChannelParallelConv(c *comm.Comm, inC, f int, geom dist.ConvGeom) *ChannelParallelConv {
	if inC < c.Size() {
		panic(fmt.Sprintf("core: channel-parallel conv with %d channels on %d ranks", inC, c.Size()))
	}
	cr := dist.BlockPartition(inC, c.Size(), c.Rank())
	return &ChannelParallelConv{
		Geom: geom, C: inC, F: f, CRange: cr,
		W:  tensor.New(f, cr.Len(), geom.K, geom.K),
		DW: tensor.New(f, cr.Len(), geom.K, geom.K),
	}
}

// Forward takes this rank's channel shard x [N, cLoc, H, W] and returns the
// complete y [N, F, OH, OW], identical on every rank after the allreduce.
func (l *ChannelParallelConv) Forward(c *comm.Comm, x *tensor.Tensor) *tensor.Tensor {
	xs := x.Shape()
	if xs[1] != l.CRange.Len() {
		panic(fmt.Sprintf("core: channel shard has %d channels, rank owns %d", xs[1], l.CRange.Len()))
	}
	oh, ow := l.Geom.OutSize(xs[2]), l.Geom.OutSize(xs[3])
	y := tensor.New(xs[0], l.F, oh, ow)
	kernels.ConvForward(x, l.W, nil, y, l.Geom.S, l.Geom.Pad, kernels.ConvAuto)
	if c.Size() > 1 {
		c.Allreduce(y.Data(), comm.OpSum) // complete the channel sum
	}
	l.x = x
	return y
}

// Backward consumes the full dy (replicated) and returns dx for this rank's
// channel shard. No communication is needed: the channel partition makes
// both dw and dx local.
func (l *ChannelParallelConv) Backward(c *comm.Comm, dy *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("core: channel-parallel Backward before Forward")
	}
	kernels.ConvBackwardFilter(l.x, dy, l.DW, l.Geom.S, l.Geom.Pad, false)
	dx := tensor.New(l.x.Shape()...)
	kernels.ConvBackwardData(dy, l.W, dx, l.Geom.S, l.Geom.Pad)
	l.x = nil
	return dx
}
