package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/tensor"
)

// Redistribute shuffles a distributed tensor from its current distribution
// to dst (Section III-C): each processor sends the indices it no longer
// owns and receives its new ones via an all-to-all. Both distributions must
// describe the same global tensor over the same processor set. Every tensor
// dimension — including the channel axis — may be partitioned differently
// on the two sides, so channel-partitioned placements remap to replicated-
// channel (PC = 1) ones and back with the same code path. Forward and
// backward shuffles are the same operation with the distributions swapped,
// and the result is a pure permutation of the data: a round trip is bitwise
// identical.
func Redistribute(ctx *Ctx, x DistTensor, dst dist.Dist) DistTensor {
	src := x.Dist
	if src.N != dst.N || src.C != dst.C || src.H != dst.H || src.W != dst.W {
		panic(fmt.Sprintf("core: redistribute shape mismatch %v -> %v", src, dst))
	}
	p := ctx.C.Size()
	if src.Grid.Size() != p || dst.Grid.Size() != p {
		panic("core: redistribute requires both grids to cover the communicator")
	}
	me := ctx.Rank

	myN, myC, myH, myW := src.RangeN(me), src.RangeC(me), src.RangeH(me), src.RangeW(me)
	send := make([][]float32, p)
	for q := 0; q < p; q++ {
		on := myN.Intersect(dst.RangeN(q))
		oc := myC.Intersect(dst.RangeC(q))
		oh := myH.Intersect(dst.RangeH(q))
		ow := myW.Intersect(dst.RangeW(q))
		if on.Empty() || oc.Empty() || oh.Empty() || ow.Empty() {
			continue
		}
		send[q] = x.Local.ExtractRegion(tensor.Region{
			Off:  []int{on.Lo - myN.Lo, oc.Lo - myC.Lo, oh.Lo - myH.Lo, ow.Lo - myW.Lo},
			Size: []int{on.Len(), oc.Len(), oh.Len(), ow.Len()},
		})
	}
	recv := ctx.C.AlltoAllV(send)

	out := NewDistTensor(dst, me)
	newN, newC, newH, newW := dst.RangeN(me), dst.RangeC(me), dst.RangeH(me), dst.RangeW(me)
	for q := 0; q < p; q++ {
		on := newN.Intersect(src.RangeN(q))
		oc := newC.Intersect(src.RangeC(q))
		oh := newH.Intersect(src.RangeH(q))
		ow := newW.Intersect(src.RangeW(q))
		if on.Empty() || oc.Empty() || oh.Empty() || ow.Empty() {
			continue
		}
		if len(recv[q]) != on.Len()*oc.Len()*oh.Len()*ow.Len() {
			panic(fmt.Sprintf("core: redistribute rank %d received %d words from %d, want %d",
				me, len(recv[q]), q, on.Len()*oc.Len()*oh.Len()*ow.Len()))
		}
		out.Local.InsertRegion(tensor.Region{
			Off:  []int{on.Lo - newN.Lo, oc.Lo - newC.Lo, oh.Lo - newH.Lo, ow.Lo - newW.Lo},
			Size: []int{on.Len(), oc.Len(), oh.Len(), ow.Len()},
		}, recv[q])
		ctx.C.Release(recv[q])
	}
	return out
}

// ShuffleVolume returns the number of words rank would send in a
// redistribution from src to dst — the Shuffle(Di, Dj) cost input of the
// performance model (Section V-B).
func ShuffleVolume(src, dst dist.Dist, rank int) int {
	p := src.Grid.Size()
	myN, myC, myH, myW := src.RangeN(rank), src.RangeC(rank), src.RangeH(rank), src.RangeW(rank)
	words := 0
	for q := 0; q < p; q++ {
		if q == rank {
			continue
		}
		on := myN.Intersect(dst.RangeN(q))
		oc := myC.Intersect(dst.RangeC(q))
		oh := myH.Intersect(dst.RangeH(q))
		ow := myW.Intersect(dst.RangeW(q))
		words += on.Len() * oc.Len() * oh.Len() * ow.Len()
	}
	return words
}
