//go:build race

package core

// raceEnabled reports that the race detector is active: its sync.Pool
// instrumentation deliberately drops cached items to widen interleavings,
// so the zero-allocation assertions do not hold under -race.
const raceEnabled = true
