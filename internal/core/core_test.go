package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// grids exercised by the exactness tests: pure sample, pure spatial (1-D and
// 2-D), and hybrid sample/spatial parallelism.
var testGrids = []dist.Grid{
	{PN: 1, PH: 1, PW: 1},
	{PN: 2, PH: 1, PW: 1},
	{PN: 1, PH: 2, PW: 1},
	{PN: 1, PH: 1, PW: 2},
	{PN: 1, PH: 2, PW: 2},
	{PN: 2, PH: 2, PW: 1},
	{PN: 2, PH: 2, PW: 2},
	{PN: 1, PH: 4, PW: 1},
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, g := range testGrids {
		d := dist.Dist{Grid: g, N: 4, C: 3, H: 8, W: 8}
		x := tensor.New(d.N, d.C, d.H, d.W)
		x.FillRandN(1, 1)
		shards := Scatter(x, d)
		back := Gather(shards)
		if x.MaxAbsDiff(back) != 0 {
			t.Errorf("grid %v: scatter/gather not identity", g)
		}
	}
}

// runDistributed executes fn on every rank of a fresh world over grid g and
// returns nothing; fn collects results itself (under mu if shared).
func runDistributed(g dist.Grid, fn func(ctx *Ctx)) {
	w := comm.NewWorld(g.Size())
	w.Run(func(c *comm.Comm) {
		fn(NewCtx(c, g))
	})
}

// distConvCase runs a distributed convolution forward+backward over grid g
// and compares every result against the sequential kernels.
func checkDistConv(t *testing.T, g dist.Grid, n, c, h, wd, f int, geom dist.ConvGeom, overlap bool, algo kernels.ConvAlgo) {
	t.Helper()
	inD := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
	if inD.Validate() != nil {
		return
	}
	oh, ow := geom.OutSize(h), geom.OutSize(wd)
	if oh < g.PH || ow < g.PW || oh <= 0 || ow <= 0 {
		return
	}
	x := tensor.New(n, c, h, wd)
	x.FillRandN(7, 1)
	w := tensor.New(f, c, geom.K, geom.K)
	w.FillRandN(8, 0.5)
	bias := make([]float32, f)
	for i := range bias {
		bias[i] = 0.1 * float32(i+1)
	}
	dy := tensor.New(n, f, oh, ow)
	dy.FillRandN(9, 1)

	// Sequential reference.
	ySeq := tensor.New(n, f, oh, ow)
	kernels.ConvForward(x, w, bias, ySeq, geom.S, geom.Pad, kernels.ConvDirect)
	dxSeq := tensor.New(n, c, h, wd)
	kernels.ConvBackwardData(dy, w, dxSeq, geom.S, geom.Pad)
	dwSeq := tensor.New(f, c, geom.K, geom.K)
	kernels.ConvBackwardFilter(x, dy, dwSeq, geom.S, geom.Pad, false)
	dbSeq := make([]float32, f)
	kernels.BiasBackward(dy, dbSeq, false)

	// Distributed run.
	xShards := Scatter(x, inD)
	outD := dist.Dist{Grid: g, N: n, C: f, H: oh, W: ow}
	dyShards := Scatter(dy, outD)
	yOut := make([]DistTensor, g.Size())
	dxOut := make([]DistTensor, g.Size())
	dwOut := make([]*tensor.Tensor, g.Size())
	dbOut := make([][]float32, g.Size())
	var mu sync.Mutex
	runDistributed(g, func(ctx *Ctx) {
		l := NewConv(ctx, inD, f, geom, true)
		copy(l.W.Data(), w.Data())
		copy(l.Bias, bias)
		l.Overlap = overlap
		l.Algo = algo
		y := l.Forward(ctx, xShards[ctx.Rank])
		dx := l.Backward(ctx, dyShards[ctx.Rank])
		mu.Lock()
		yOut[ctx.Rank] = y
		dxOut[ctx.Rank] = dx
		dwOut[ctx.Rank] = l.DW
		dbOut[ctx.Rank] = l.DBias
		mu.Unlock()
	})

	if d := Gather(yOut).RelDiff(ySeq); d > 1e-4 {
		t.Errorf("grid %v geom %+v overlap=%v: forward rel diff %g", g, geom, overlap, d)
	}
	if d := Gather(dxOut).RelDiff(dxSeq); d > 1e-4 {
		t.Errorf("grid %v geom %+v overlap=%v: bwd-data rel diff %g", g, geom, overlap, d)
	}
	for r := 0; r < g.Size(); r++ {
		if d := dwOut[r].RelDiff(dwSeq); d > 1e-3 {
			t.Errorf("grid %v geom %+v overlap=%v rank %d: dw rel diff %g", g, geom, overlap, r, d)
		}
		for i := range dbSeq {
			if diff := float64(dbOut[r][i] - dbSeq[i]); diff > 1e-3 || diff < -1e-3 {
				t.Errorf("grid %v rank %d: dbias[%d] = %v, want %v", g, r, i, dbOut[r][i], dbSeq[i])
			}
		}
	}
}

func TestDistConv3x3SameAllGrids(t *testing.T) {
	for _, g := range testGrids {
		checkDistConv(t, g, 4, 3, 12, 12, 5, dist.ConvGeom{K: 3, S: 1, Pad: 1}, false, kernels.ConvDirect)
	}
}

func TestDistConv3x3OverlapAllGrids(t *testing.T) {
	for _, g := range testGrids {
		checkDistConv(t, g, 4, 3, 12, 12, 5, dist.ConvGeom{K: 3, S: 1, Pad: 1}, true, kernels.ConvAuto)
	}
}

func TestDistConvStride2AllGrids(t *testing.T) {
	// Mesh conv1_1 geometry (K=5 S=2 P=2), scaled down.
	for _, g := range testGrids {
		checkDistConv(t, g, 2, 3, 16, 16, 4, dist.ConvGeom{K: 5, S: 2, Pad: 2}, true, kernels.ConvAuto)
	}
}

func TestDistConvResNetConv1Geometry(t *testing.T) {
	// K=7 S=2 P=3 (ResNet-50 conv1), on a 32x32 input.
	for _, g := range []dist.Grid{{PN: 1, PH: 2, PW: 2}, {PN: 2, PH: 2, PW: 1}} {
		checkDistConv(t, g, 2, 3, 32, 32, 8, dist.ConvGeom{K: 7, S: 2, Pad: 3}, true, kernels.ConvAuto)
	}
}

func TestDistConv1x1NoHalo(t *testing.T) {
	// 1x1 convolutions need no halo exchange (res3b_branch2a geometry).
	for _, g := range testGrids {
		checkDistConv(t, g, 2, 6, 8, 8, 4, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true, kernels.ConvAuto)
	}
	// And the plan must actually be empty.
	g := dist.Grid{PN: 1, PH: 2, PW: 2}
	inD := dist.Dist{Grid: g, N: 2, C: 3, H: 8, W: 8}
	plan := forwardPlan(inD, 0, dist.ConvGeom{K: 1, S: 1, Pad: 0}, 8, 8)
	if len(plan.recvW)+len(plan.recvH)+len(plan.sendW)+len(plan.sendH) != 0 {
		t.Error("1x1 convolution generated halo transfers")
	}
	if plan.HaloVolume() != 0 {
		t.Error("1x1 convolution has nonzero halo volume")
	}
}

func TestDistConvUnevenPartition(t *testing.T) {
	// H=13 over 4 parts: blocks of 4,3,3,3 — exercises uneven halos.
	checkDistConv(t, dist.Grid{PN: 1, PH: 4, PW: 1}, 2, 2, 13, 9, 3, dist.ConvGeom{K: 3, S: 1, Pad: 1}, true, kernels.ConvAuto)
	checkDistConv(t, dist.Grid{PN: 1, PH: 2, PW: 2}, 3, 2, 11, 13, 3, dist.ConvGeom{K: 3, S: 1, Pad: 1}, false, kernels.ConvDirect)
}

func TestDistConvWideHaloMultiHop(t *testing.T) {
	// K=7 halo (3 rows) wider than a block (2 rows): multi-peer exchange.
	checkDistConv(t, dist.Grid{PN: 1, PH: 4, PW: 1}, 1, 2, 8, 8, 2, dist.ConvGeom{K: 7, S: 1, Pad: 3}, false, kernels.ConvDirect)
	checkDistConv(t, dist.Grid{PN: 1, PH: 4, PW: 1}, 1, 2, 8, 8, 2, dist.ConvGeom{K: 7, S: 1, Pad: 3}, true, kernels.ConvAuto)
}

func TestDistMaxPool(t *testing.T) {
	for _, g := range testGrids {
		for _, geom := range []dist.ConvGeom{{K: 2, S: 2, Pad: 0}, {K: 3, S: 2, Pad: 1}, {K: 3, S: 1, Pad: 1}} {
			n, c, h, wd := 2, 3, 12, 12
			inD := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
			oh, ow := geom.OutSize(h), geom.OutSize(wd)
			if oh < g.PH || ow < g.PW {
				continue
			}
			x := tensor.New(n, c, h, wd)
			x.FillRandN(11, 1)
			dy := tensor.New(n, c, oh, ow)
			dy.FillRandN(12, 1)

			ySeq := tensor.New(n, c, oh, ow)
			am := make([]int32, ySeq.Size())
			kernels.MaxPoolForward(x, ySeq, geom.K, geom.S, geom.Pad, am)
			dxSeq := tensor.New(n, c, h, wd)
			kernels.MaxPoolBackward(dy, am, dxSeq)

			outD := dist.Dist{Grid: g, N: n, C: c, H: oh, W: ow}
			xShards := Scatter(x, inD)
			dyShards := Scatter(dy, outD)
			yOut := make([]DistTensor, g.Size())
			dxOut := make([]DistTensor, g.Size())
			var mu sync.Mutex
			runDistributed(g, func(ctx *Ctx) {
				l := NewMaxPool(ctx, inD, geom)
				y := l.Forward(ctx, xShards[ctx.Rank])
				dx := l.Backward(ctx, dyShards[ctx.Rank])
				mu.Lock()
				yOut[ctx.Rank] = y
				dxOut[ctx.Rank] = dx
				mu.Unlock()
			})
			if d := Gather(yOut).MaxAbsDiff(ySeq); d != 0 {
				t.Errorf("grid %v geom %+v: maxpool forward diff %g", g, geom, d)
			}
			if d := Gather(dxOut).RelDiff(dxSeq); d > 1e-5 {
				t.Errorf("grid %v geom %+v: maxpool backward rel diff %g", g, geom, d)
			}
		}
	}
}

func TestDistBatchNormGlobalMatchesSequential(t *testing.T) {
	for _, g := range testGrids {
		n, c, h, wd := 4, 3, 8, 8
		d := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
		x := tensor.New(n, c, h, wd)
		x.FillRandN(13, 2)
		dy := tensor.New(n, c, h, wd)
		dy.FillRandN(14, 1)
		gamma := []float32{1.5, 0.5, 2}
		beta := []float32{0.1, -0.3, 0}

		// Sequential reference.
		count := n * h * wd
		sum := make([]float32, c)
		sumsq := make([]float32, c)
		kernels.BatchNormStats(x, sum, sumsq)
		mean := make([]float32, c)
		invstd := make([]float32, c)
		kernels.BatchNormMoments(sum, sumsq, count, 1e-5, mean, invstd)
		ySeq := tensor.New(n, c, h, wd)
		kernels.BatchNormForward(x, mean, invstd, gamma, beta, ySeq)
		dgSeq := make([]float32, c)
		dbSeq := make([]float32, c)
		kernels.BatchNormBackwardStats(x, dy, mean, invstd, dgSeq, dbSeq)
		dxSeq := tensor.New(n, c, h, wd)
		kernels.BatchNormBackwardData(x, dy, mean, invstd, gamma, dgSeq, dbSeq, count, dxSeq)

		xShards := Scatter(x, d)
		dyShards := Scatter(dy, d)
		yOut := make([]DistTensor, g.Size())
		dxOut := make([]DistTensor, g.Size())
		dgOut := make([][]float32, g.Size())
		var mu sync.Mutex
		runDistributed(g, func(ctx *Ctx) {
			l := NewBatchNorm(ctx, d, BatchNormGlobal)
			copy(l.Gamma, gamma)
			copy(l.Beta, beta)
			y := l.Forward(ctx, xShards[ctx.Rank])
			dx := l.Backward(ctx, dyShards[ctx.Rank])
			mu.Lock()
			yOut[ctx.Rank] = y
			dxOut[ctx.Rank] = dx
			dgOut[ctx.Rank] = l.DGamma
			mu.Unlock()
		})
		if diff := Gather(yOut).RelDiff(ySeq); diff > 1e-4 {
			t.Errorf("grid %v: batchnorm forward rel diff %g", g, diff)
		}
		if diff := Gather(dxOut).RelDiff(dxSeq); diff > 1e-3 {
			t.Errorf("grid %v: batchnorm backward rel diff %g", g, diff)
		}
		for r := 0; r < g.Size(); r++ {
			for i := range dgSeq {
				if d := float64(dgOut[r][i] - dgSeq[i]); d > 1e-2 || d < -1e-2 {
					t.Errorf("grid %v rank %d: dgamma[%d] = %v, want %v", g, r, i, dgOut[r][i], dgSeq[i])
				}
			}
		}
	}
}

func TestDistBatchNormLocalDiffersUnderSplit(t *testing.T) {
	// Sanity check that the local variant really uses local statistics: on a
	// split grid with heterogeneous shards it must differ from sequential.
	g := dist.Grid{PN: 2, PH: 1, PW: 1}
	n, c, h, wd := 4, 2, 4, 4
	d := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
	x := tensor.New(n, c, h, wd)
	x.FillRandN(15, 1)
	// Make the two sample groups statistically different.
	for i := 0; i < x.Size()/2; i++ {
		x.Data()[i] += 5
	}
	sum := make([]float32, c)
	sumsq := make([]float32, c)
	kernels.BatchNormStats(x, sum, sumsq)
	mean := make([]float32, c)
	invstd := make([]float32, c)
	kernels.BatchNormMoments(sum, sumsq, n*h*wd, 1e-5, mean, invstd)
	ySeq := tensor.New(n, c, h, wd)
	gamma := []float32{1, 1}
	beta := []float32{0, 0}
	kernels.BatchNormForward(x, mean, invstd, gamma, beta, ySeq)

	xShards := Scatter(x, d)
	yOut := make([]DistTensor, g.Size())
	var mu sync.Mutex
	runDistributed(g, func(ctx *Ctx) {
		l := NewBatchNorm(ctx, d, BatchNormLocal)
		y := l.Forward(ctx, xShards[ctx.Rank])
		mu.Lock()
		yOut[ctx.Rank] = y
		mu.Unlock()
	})
	if d := Gather(yOut).MaxAbsDiff(ySeq); d < 1e-3 {
		t.Errorf("local batchnorm unexpectedly matches global statistics (diff %g)", d)
	}
}

func TestDistGlobalAvgPool(t *testing.T) {
	for _, g := range testGrids {
		n, c, h, wd := 4, 3, 8, 8
		d := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
		x := tensor.New(n, c, h, wd)
		x.FillRandN(16, 1)
		ySeq := tensor.New(n, c, 1, 1)
		kernels.GlobalAvgPoolForward(x, ySeq)

		xShards := Scatter(x, d)
		var mu sync.Mutex
		results := make([]DistTensor, g.Size())
		dxOut := make([]DistTensor, g.Size())
		runDistributed(g, func(ctx *Ctx) {
			l := NewGlobalAvgPool(ctx, d)
			y := l.Forward(ctx, xShards[ctx.Rank])
			// Backward with dy = y (arbitrary values, replicated in group).
			dx := l.Backward(ctx, y)
			mu.Lock()
			results[ctx.Rank] = y
			dxOut[ctx.Rank] = dx
			mu.Unlock()
		})
		// Each rank's [nLoc, C] values must match the sequential means of
		// the samples it owns.
		for r := 0; r < g.Size(); r++ {
			rn := d.RangeN(r)
			for nl := 0; nl < rn.Len(); nl++ {
				for ci := 0; ci < c; ci++ {
					got := results[r].Local.At4(nl, ci, 0, 0)
					want := ySeq.At4(rn.Lo+nl, ci, 0, 0)
					if diff := float64(got - want); diff > 1e-4 || diff < -1e-4 {
						t.Errorf("grid %v rank %d: avgpool(%d,%d) = %v, want %v", g, r, nl, ci, got, want)
					}
				}
			}
		}
		// Backward: dx elements must equal dy/(H*W) for the right sample.
		dxG := Gather(dxOut)
		for ni := 0; ni < n; ni++ {
			for ci := 0; ci < c; ci++ {
				want := ySeq.At4(ni, ci, 0, 0) / float32(h*wd)
				if diff := float64(dxG.At4(ni, ci, 3, 5) - want); diff > 1e-5 || diff < -1e-5 {
					t.Errorf("grid %v: avgpool backward (%d,%d) = %v, want %v", g, ni, ci, dxG.At4(ni, ci, 3, 5), want)
				}
			}
		}
	}
}

func TestDistReLU(t *testing.T) {
	g := dist.Grid{PN: 2, PH: 2, PW: 1}
	d := dist.Dist{Grid: g, N: 2, C: 2, H: 6, W: 6}
	x := tensor.New(2, 2, 6, 6)
	x.FillRandN(17, 1)
	dy := tensor.New(2, 2, 6, 6)
	dy.FillRandN(18, 1)
	ySeq := tensor.New(2, 2, 6, 6)
	kernels.ReLUForward(x, ySeq)
	dxSeq := tensor.New(2, 2, 6, 6)
	kernels.ReLUBackward(x, dy, dxSeq)

	xs := Scatter(x, d)
	dys := Scatter(dy, d)
	yOut := make([]DistTensor, g.Size())
	dxOut := make([]DistTensor, g.Size())
	var mu sync.Mutex
	runDistributed(g, func(ctx *Ctx) {
		l := NewReLU(d)
		y := l.Forward(ctx, xs[ctx.Rank])
		dx := l.Backward(ctx, dys[ctx.Rank])
		mu.Lock()
		yOut[ctx.Rank] = y
		dxOut[ctx.Rank] = dx
		mu.Unlock()
	})
	if Gather(yOut).MaxAbsDiff(ySeq) != 0 || Gather(dxOut).MaxAbsDiff(dxSeq) != 0 {
		t.Error("distributed ReLU differs from sequential")
	}
}

func TestRedistributeBetweenGrids(t *testing.T) {
	// Sample-parallel {4,1,1} -> hybrid {1,2,2} and back.
	gA := dist.Grid{PN: 4, PH: 1, PW: 1}
	gB := dist.Grid{PN: 1, PH: 2, PW: 2}
	n, c, h, wd := 4, 3, 8, 8
	dA := dist.Dist{Grid: gA, N: n, C: c, H: h, W: wd}
	dB := dist.Dist{Grid: gB, N: n, C: c, H: h, W: wd}
	x := tensor.New(n, c, h, wd)
	x.FillRandN(19, 1)
	shards := Scatter(x, dA)
	outB := make([]DistTensor, 4)
	outA := make([]DistTensor, 4)
	var mu sync.Mutex
	runDistributed(gA, func(ctx *Ctx) {
		b := Redistribute(ctx, shards[ctx.Rank], dB)
		a := Redistribute(ctx, b, dA)
		mu.Lock()
		outB[ctx.Rank] = b
		outA[ctx.Rank] = a
		mu.Unlock()
	})
	if d := Gather(outB).MaxAbsDiff(x); d != 0 {
		t.Errorf("redistribute A->B lost data (diff %g)", d)
	}
	if d := Gather(outA).MaxAbsDiff(x); d != 0 {
		t.Errorf("round trip A->B->A lost data (diff %g)", d)
	}
}

func TestShuffleVolumeZeroForSameDist(t *testing.T) {
	d := dist.Dist{Grid: dist.Grid{PN: 2, PH: 2, PW: 1}, N: 4, C: 3, H: 8, W: 8}
	for r := 0; r < 4; r++ {
		if v := ShuffleVolume(d, d, r); v != 0 {
			t.Errorf("rank %d: shuffle volume %d for identical distributions", r, v)
		}
	}
}

func TestShuffleVolumeConservation(t *testing.T) {
	// Total sent volume equals total tensor elements not staying in place.
	dA := dist.Dist{Grid: dist.Grid{PN: 4, PH: 1, PW: 1}, N: 4, C: 2, H: 6, W: 6}
	dB := dist.Dist{Grid: dist.Grid{PN: 1, PH: 2, PW: 2}, N: 4, C: 2, H: 6, W: 6}
	total := 0
	for r := 0; r < 4; r++ {
		total += ShuffleVolume(dA, dB, r)
	}
	// Each element moves unless its owner coincides; with these grids rank r
	// keeps the elements where sample-block r intersects quadrant r.
	stay := 0
	for r := 0; r < 4; r++ {
		on := dA.RangeN(r).Intersect(dB.RangeN(r))
		oh := dA.RangeH(r).Intersect(dB.RangeH(r))
		ow := dA.RangeW(r).Intersect(dB.RangeW(r))
		stay += on.Len() * 2 * oh.Len() * ow.Len()
	}
	if total != 4*2*6*6-stay {
		t.Errorf("shuffle volume %d, want %d", total, 4*2*6*6-stay)
	}
}

func TestModelParallelFCMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		n, in, out := 8, 10, 6
		x := tensor.New(n, in)
		x.FillRandN(20, 1)
		w := tensor.New(out, in)
		w.FillRandN(21, 1)
		bias := make([]float32, out)
		for i := range bias {
			bias[i] = float32(i) * 0.1
		}
		dy := tensor.New(n, out)
		dy.FillRandN(22, 1)

		ySeq := tensor.New(n, out)
		kernels.FCForward(x, w, bias, ySeq)
		dxSeq := tensor.New(n, in)
		kernels.FCBackwardData(dy, w, dxSeq)
		dwSeq := tensor.New(out, in)
		dbSeq := make([]float32, out)
		kernels.FCBackwardParams(x, dy, dwSeq, dbSeq, false)

		yOut := make([]*tensor.Tensor, p)
		dxOut := make([]*tensor.Tensor, p)
		dwOut := make([]*tensor.Tensor, p)
		ranges := make([]dist.Range, p)
		var mu sync.Mutex
		world := comm.NewWorld(p)
		world.Run(func(c *comm.Comm) {
			l := NewModelParallelFC(c, n, in, out)
			// Load this rank's weight block.
			r := l.OutRange
			l.W.InsertRegion(
				tensor.Region{Off: []int{0, 0}, Size: []int{r.Len(), in}},
				w.ExtractRegion(tensor.Region{Off: []int{r.Lo, 0}, Size: []int{r.Len(), in}}))
			copy(l.Bias, bias[r.Lo:r.Hi])
			sr := dist.BlockPartition(n, p, c.Rank())
			xLoc := tensor.New(sr.Len(), in)
			xLoc.InsertRegion(tensor.Region{Off: []int{0, 0}, Size: []int{sr.Len(), in}},
				x.ExtractRegion(tensor.Region{Off: []int{sr.Lo, 0}, Size: []int{sr.Len(), in}}))
			y := l.Forward(c, xLoc)
			dyLoc := tensor.New(sr.Len(), out)
			dyLoc.InsertRegion(tensor.Region{Off: []int{0, 0}, Size: []int{sr.Len(), out}},
				dy.ExtractRegion(tensor.Region{Off: []int{sr.Lo, 0}, Size: []int{sr.Len(), out}}))
			dx := l.Backward(c, dyLoc)
			mu.Lock()
			yOut[c.Rank()] = y
			dxOut[c.Rank()] = dx
			dwOut[c.Rank()] = l.DW
			ranges[c.Rank()] = r
			mu.Unlock()
		})
		// Verify sample shards of y and dx.
		for r := 0; r < p; r++ {
			sr := dist.BlockPartition(n, p, r)
			for i := 0; i < sr.Len(); i++ {
				for j := 0; j < out; j++ {
					if d := float64(yOut[r].At(i, j) - ySeq.At(sr.Lo+i, j)); d > 1e-3 || d < -1e-3 {
						t.Errorf("p=%d rank %d: y(%d,%d) diff %g", p, r, i, j, d)
					}
				}
				for j := 0; j < in; j++ {
					if d := float64(dxOut[r].At(i, j) - dxSeq.At(sr.Lo+i, j)); d > 1e-3 || d < -1e-3 {
						t.Errorf("p=%d rank %d: dx(%d,%d) diff %g", p, r, i, j, d)
					}
				}
			}
			// Verify weight gradient blocks.
			for i := ranges[r].Lo; i < ranges[r].Hi; i++ {
				for j := 0; j < in; j++ {
					if d := float64(dwOut[r].At(i-ranges[r].Lo, j) - dwSeq.At(i, j)); d > 1e-3 || d < -1e-3 {
						t.Errorf("p=%d rank %d: dw(%d,%d) diff %g", p, r, i, j, d)
					}
				}
			}
		}
	}
}

// Property: distributed convolution matches sequential for random shapes,
// geometries, and grids.
func TestQuickDistConvMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping randomized distributed conv in -short mode")
	}
	gridChoices := []dist.Grid{
		{PN: 1, PH: 2, PW: 1}, {PN: 1, PH: 1, PW: 2}, {PN: 2, PH: 1, PW: 1},
		{PN: 1, PH: 2, PW: 2}, {PN: 2, PH: 2, PW: 1}, {PN: 1, PH: 3, PW: 1},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gridChoices[rng.Intn(len(gridChoices))]
		k := 1 + 2*rng.Intn(3)
		s := 1 + rng.Intn(2)
		pad := rng.Intn(k/2 + 1)
		geom := dist.ConvGeom{K: k, S: s, Pad: pad}
		h := 8 + rng.Intn(8)
		wd := 8 + rng.Intn(8)
		n := g.PN * (1 + rng.Intn(2))
		c := 1 + rng.Intn(3)
		fo := 1 + rng.Intn(4)
		oh, ow := geom.OutSize(h), geom.OutSize(wd)
		if oh < g.PH || ow < g.PW {
			return true
		}
		inD := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
		if inD.Validate() != nil {
			return true
		}
		x := tensor.New(n, c, h, wd)
		x.FillRandN(seed, 1)
		w := tensor.New(fo, c, k, k)
		w.FillRandN(seed+1, 0.5)
		ySeq := tensor.New(n, fo, oh, ow)
		kernels.ConvForward(x, w, nil, ySeq, s, pad, kernels.ConvDirect)

		xShards := Scatter(x, inD)
		yOut := make([]DistTensor, g.Size())
		overlap := rng.Intn(2) == 0
		var mu sync.Mutex
		runDistributed(g, func(ctx *Ctx) {
			l := NewConv(ctx, inD, fo, geom, false)
			copy(l.W.Data(), w.Data())
			l.Overlap = overlap
			y := l.Forward(ctx, xShards[ctx.Rank])
			mu.Lock()
			yOut[ctx.Rank] = y
			mu.Unlock()
		})
		return Gather(yOut).RelDiff(ySeq) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistAvgPool(t *testing.T) {
	for _, g := range testGrids {
		for _, geom := range []dist.ConvGeom{{K: 2, S: 2, Pad: 0}, {K: 3, S: 2, Pad: 1}, {K: 3, S: 1, Pad: 1}} {
			n, c, h, wd := 2, 3, 12, 12
			inD := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
			oh, ow := geom.OutSize(h), geom.OutSize(wd)
			if oh < g.PH || ow < g.PW {
				continue
			}
			x := tensor.New(n, c, h, wd)
			x.FillRandN(31, 1)
			dy := tensor.New(n, c, oh, ow)
			dy.FillRandN(32, 1)

			ySeq := tensor.New(n, c, oh, ow)
			kernels.AvgPoolForward(x, ySeq, geom.K, geom.S, geom.Pad)
			dxSeq := tensor.New(n, c, h, wd)
			kernels.AvgPoolBackward(dy, dxSeq, geom.K, geom.S, geom.Pad)

			outD := dist.Dist{Grid: g, N: n, C: c, H: oh, W: ow}
			xShards := Scatter(x, inD)
			dyShards := Scatter(dy, outD)
			yOut := make([]DistTensor, g.Size())
			dxOut := make([]DistTensor, g.Size())
			var mu sync.Mutex
			runDistributed(g, func(ctx *Ctx) {
				l := NewAvgPool(ctx, inD, geom)
				y := l.Forward(ctx, xShards[ctx.Rank])
				dx := l.Backward(ctx, dyShards[ctx.Rank])
				mu.Lock()
				yOut[ctx.Rank] = y
				dxOut[ctx.Rank] = dx
				mu.Unlock()
			})
			if d := Gather(yOut).RelDiff(ySeq); d > 1e-5 {
				t.Errorf("grid %v geom %+v: avgpool forward rel diff %g", g, geom, d)
			}
			if d := Gather(dxOut).RelDiff(dxSeq); d > 1e-5 {
				t.Errorf("grid %v geom %+v: avgpool backward rel diff %g", g, geom, d)
			}
		}
	}
}
