package core

import (
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Inference-only layers must produce the same forward results as their
// training counterparts (conv) / the sequential inference kernel (batchnorm,
// whose training Forward intentionally uses batch statistics), with no
// gradient buffers and no Backward.
func TestConvInferenceForwardMatchesTraining(t *testing.T) {
	for _, g := range []dist.Grid{{PN: 1, PH: 1, PW: 1}, {PN: 1, PH: 2, PW: 1}, {PN: 2, PH: 1, PW: 2}} {
		inD := dist.Dist{Grid: g, N: 2, C: 3, H: 8, W: 8}
		geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
		x := tensor.New(2, 3, 8, 8)
		x.FillRandN(21, 1)

		var mu sync.Mutex
		train := make([]DistTensor, g.Size())
		infer := make([]DistTensor, g.Size())
		runDistributed(g, func(ctx *Ctx) {
			lt := NewConv(ctx, inD, 4, geom, true)
			li := NewConvInference(ctx, inD, 4, geom, true)
			if li.DW != nil || li.DBias != nil {
				t.Error("inference conv allocated gradient buffers")
			}
			// Same weights on both layers (and replicated across ranks).
			lt.W.FillRandN(5, 0.5)
			copy(li.W.Data(), lt.W.Data())
			for i := range lt.Bias {
				lt.Bias[i] = 0.01 * float32(i)
			}
			copy(li.Bias, lt.Bias)

			shard := Scatter(x, inD)[ctx.Rank]
			yt := lt.Forward(ctx, shard)
			// Two inference forwards in a row: the second must be identical
			// (the released halo buffers are recycled correctly).
			li.Forward(ctx, shard)
			yi := li.Forward(ctx, shard)
			mu.Lock()
			train[ctx.Rank] = yt
			infer[ctx.Rank] = yi
			mu.Unlock()
		})
		yt := Gather(train)
		yi := Gather(infer)
		if d := yt.MaxAbsDiff(yi); d != 0 {
			t.Errorf("grid %v: inference conv differs from training conv: %g", g, d)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	g := dist.Grid{PN: 1, PH: 2, PW: 1}
	d := dist.Dist{Grid: g, N: 2, C: 3, H: 8, W: 8}
	x := tensor.New(2, 3, 8, 8)
	x.FillRandN(31, 1)

	runMean := []float32{0.1, -0.2, 0.3}
	runVar := []float32{1.5, 0.7, 2.0}

	// Sequential reference on the full tensor.
	want := tensor.New(2, 3, 8, 8)
	gamma := []float32{1, 2, 3}
	beta := []float32{-1, 0, 1}
	kernels.BatchNormInference(x, runMean, runVar, gamma, beta, 1e-5, want)

	var mu sync.Mutex
	outs := make([]DistTensor, g.Size())
	runDistributed(g, func(ctx *Ctx) {
		l := NewBatchNormInference(d)
		if l.DGamma != nil || l.DBeta != nil {
			t.Error("inference batchnorm allocated gradient buffers")
		}
		copy(l.RunMean, runMean)
		copy(l.RunVar, runVar)
		copy(l.Gamma, gamma)
		copy(l.Beta, beta)
		shard := Scatter(x, d)[ctx.Rank]
		y := l.Forward(ctx, shard)
		mu.Lock()
		outs[ctx.Rank] = y
		mu.Unlock()
	})
	got := Gather(outs)
	if diff := got.MaxAbsDiff(want); diff != 0 {
		t.Errorf("distributed inference batchnorm differs from sequential: %g", diff)
	}
}

func TestInferenceBackwardPanics(t *testing.T) {
	g := dist.Grid{PN: 1, PH: 1, PW: 1}
	d := dist.Dist{Grid: g, N: 1, C: 2, H: 4, W: 4}
	runDistributed(g, func(ctx *Ctx) {
		l := NewConvInference(ctx, d, 2, dist.ConvGeom{K: 3, S: 1, Pad: 1}, false)
		x := NewDistTensor(d, ctx.Rank)
		y := l.Forward(ctx, x)
		defer func() {
			if recover() == nil {
				t.Error("Backward on inference conv did not panic")
			}
		}()
		l.Backward(ctx, y)
	})
}
