package core

import (
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Inference-only layers must produce the same forward results as their
// training counterparts (conv) / the sequential inference kernel (batchnorm,
// whose training Forward intentionally uses batch statistics), with no
// gradient buffers and no Backward.
func TestConvInferenceForwardMatchesTraining(t *testing.T) {
	for _, g := range []dist.Grid{{PN: 1, PH: 1, PW: 1}, {PN: 1, PH: 2, PW: 1}, {PN: 2, PH: 1, PW: 2}} {
		inD := dist.Dist{Grid: g, N: 2, C: 3, H: 8, W: 8}
		geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
		x := tensor.New(2, 3, 8, 8)
		x.FillRandN(21, 1)

		var mu sync.Mutex
		train := make([]DistTensor, g.Size())
		infer := make([]DistTensor, g.Size())
		runDistributed(g, func(ctx *Ctx) {
			lt := NewConv(ctx, inD, 4, geom, true)
			li := NewConvInference(ctx, inD, 4, geom, true)
			if li.DW != nil || li.DBias != nil {
				t.Error("inference conv allocated gradient buffers")
			}
			// Same weights on both layers (and replicated across ranks).
			lt.W.FillRandN(5, 0.5)
			copy(li.W.Data(), lt.W.Data())
			for i := range lt.Bias {
				lt.Bias[i] = 0.01 * float32(i)
			}
			copy(li.Bias, lt.Bias)

			shard := Scatter(x, inD)[ctx.Rank]
			yt := lt.Forward(ctx, shard)
			// Two inference forwards in a row: the second must be identical
			// (the released halo buffers are recycled correctly).
			li.Forward(ctx, shard)
			yi := li.Forward(ctx, shard)
			mu.Lock()
			train[ctx.Rank] = yt
			infer[ctx.Rank] = yi
			mu.Unlock()
		})
		yt := Gather(train)
		yi := Gather(infer)
		if d := yt.MaxAbsDiff(yi); d != 0 {
			t.Errorf("grid %v: inference conv differs from training conv: %g", g, d)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	g := dist.Grid{PN: 1, PH: 2, PW: 1}
	d := dist.Dist{Grid: g, N: 2, C: 3, H: 8, W: 8}
	x := tensor.New(2, 3, 8, 8)
	x.FillRandN(31, 1)

	runMean := []float32{0.1, -0.2, 0.3}
	runVar := []float32{1.5, 0.7, 2.0}

	// Sequential reference on the full tensor.
	want := tensor.New(2, 3, 8, 8)
	gamma := []float32{1, 2, 3}
	beta := []float32{-1, 0, 1}
	kernels.BatchNormInference(x, runMean, runVar, gamma, beta, 1e-5, want)

	var mu sync.Mutex
	outs := make([]DistTensor, g.Size())
	runDistributed(g, func(ctx *Ctx) {
		l := NewBatchNormInference(ctx, d)
		if l.DGamma != nil || l.DBeta != nil {
			t.Error("inference batchnorm allocated gradient buffers")
		}
		copy(l.RunMean, runMean)
		copy(l.RunVar, runVar)
		copy(l.Gamma, gamma)
		copy(l.Beta, beta)
		shard := Scatter(x, d)[ctx.Rank]
		y := l.Forward(ctx, shard)
		mu.Lock()
		outs[ctx.Rank] = y
		mu.Unlock()
	})
	got := Gather(outs)
	if diff := got.MaxAbsDiff(want); diff != 0 {
		t.Errorf("distributed inference batchnorm differs from sequential: %g", diff)
	}
}

// Filter-split inference convolutions must be bitwise identical to the
// sequential batched serving kernel: every rank holds complete weight rows
// and gathers the complete input channels, so its filter block reproduces
// the same accumulations ConvForwardBatched performs.
func TestFilterParallelConvInferenceBitwise(t *testing.T) {
	for _, pc := range []int{1, 2, 3} {
		g := dist.Grid{PN: 1, PC: pc, PH: 1, PW: 1}
		inD := dist.Dist{Grid: g, N: 3, C: 5, H: 6, W: 6}
		geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
		const f = 7
		x := tensor.New(3, 5, 6, 6)
		x.FillRandN(11, 1)
		w := tensor.New(f, 5, 3, 3)
		w.FillRandN(12, 0.5)
		bias := make([]float32, f)
		for i := range bias {
			bias[i] = 0.05 * float32(i)
		}
		want := tensor.New(3, f, 6, 6)
		kernels.ConvForwardBatched(x, w, bias, want, 1, 1)

		var mu sync.Mutex
		outs := make([]DistTensor, g.Size())
		runDistributed(g, func(ctx *Ctx) {
			l := NewFilterParallelConvInference(ctx, inD, f, geom, true)
			if l.DW != nil || l.DBias != nil {
				t.Error("inference filter-parallel conv allocated gradient buffers")
			}
			// Load this rank's filter rows of the full weights and bias.
			copy(l.W.Data(), w.Data()[l.FRange.Lo*5*3*3:l.FRange.Hi*5*3*3])
			copy(l.Bias, bias[l.FRange.Lo:l.FRange.Hi])
			shard := Scatter(x, inD)[ctx.Rank]
			y := l.Forward(ctx, shard)
			mu.Lock()
			outs[ctx.Rank] = DistTensor{Dist: y.Dist, Rank: y.Rank, Local: y.Local.Clone()}
			mu.Unlock()
		})
		got := Gather(outs)
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("pc=%d: output[%d] = %v, want %v (bitwise)", pc, i, v, want.Data()[i])
				break
			}
		}
	}
}

// Channel-split inference convolutions reassociate the channel sum (one
// partial per block), so they match the sequential kernel to float
// tolerance and must be deterministic run-to-run.
func TestChannelParallelConvInferenceDeterministic(t *testing.T) {
	g := dist.Grid{PN: 1, PC: 2, PH: 1, PW: 1}
	inD := dist.Dist{Grid: g, N: 2, C: 6, H: 5, W: 5}
	geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
	const f = 4
	x := tensor.New(2, 6, 5, 5)
	x.FillRandN(21, 1)
	w := tensor.New(f, 6, 3, 3)
	w.FillRandN(22, 0.5)
	want := tensor.New(2, f, 5, 5)
	kernels.ConvForwardBatched(x, w, nil, want, 1, 1)

	run := func() *tensor.Tensor {
		var mu sync.Mutex
		outs := make([]DistTensor, g.Size())
		runDistributed(g, func(ctx *Ctx) {
			l := NewChannelParallelConvInference(ctx, inD, f, geom, false)
			if l.DW != nil {
				t.Error("inference channel-parallel conv allocated gradient buffers")
			}
			// This rank holds W[:, cBlk].
			l.W.InsertRegion(
				tensor.Region{Off: []int{0, 0, 0, 0}, Size: []int{f, l.CRange.Len(), 3, 3}},
				w.ExtractRegion(tensor.Region{Off: []int{0, l.CRange.Lo, 0, 0}, Size: []int{f, l.CRange.Len(), 3, 3}}))
			shard := Scatter(x, inD)[ctx.Rank]
			y := l.Forward(ctx, shard)
			mu.Lock()
			outs[ctx.Rank] = DistTensor{Dist: y.Dist, Rank: y.Rank, Local: y.Local.Clone()}
			mu.Unlock()
		})
		return Gather(outs)
	}
	a, b := run(), run()
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Errorf("channel-split inference not deterministic run-to-run: %g", d)
	}
	if d := a.RelDiff(want); d > 1e-5 {
		t.Errorf("channel-split inference far from sequential: rel diff %g", d)
	}
}

func TestInferenceBackwardPanics(t *testing.T) {
	g := dist.Grid{PN: 1, PH: 1, PW: 1}
	d := dist.Dist{Grid: g, N: 1, C: 2, H: 4, W: 4}
	runDistributed(g, func(ctx *Ctx) {
		l := NewConvInference(ctx, d, 2, dist.ConvGeom{K: 3, S: 1, Pad: 1}, false)
		x := NewDistTensor(d, ctx.Rank)
		y := l.Forward(ctx, x)
		defer func() {
			if recover() == nil {
				t.Error("Backward on inference conv did not panic")
			}
		}()
		l.Backward(ctx, y)
	})
}
