package core
