package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// This file extends the distributed convolution to three spatial dimensions
// — the paper's conclusion calls 3-D spatial parallelism "critical, and
// more advantageous, due to the more favorable surface-to-volume ratio".
// The halo exchange generalizes to three phases (W, then H with extended W,
// then D with extended H and W), so corners and edges piggyback exactly as
// in the 2-D two-phase scheme.

// DistTensor3 is one rank's shard of a global NCDHW tensor.
type DistTensor3 struct {
	Dist  dist.Dist3
	Rank  int
	Local *tensor.Tensor
}

// NewDistTensor3 allocates a zero shard for rank under d.
func NewDistTensor3(d dist.Dist3, rank int) DistTensor3 {
	s := d.LocalShape(rank)
	return DistTensor3{Dist: d, Rank: rank, Local: tensor.New(s[0], s[1], s[2], s[3], s[4])}
}

// Scatter3 splits a global NCDHW tensor into shards (test/IO helper).
func Scatter3(global *tensor.Tensor, d dist.Dist3) []DistTensor3 {
	gs := global.Shape()
	if gs[0] != d.N || gs[1] != d.C || gs[2] != d.D || gs[3] != d.H || gs[4] != d.W {
		panic(fmt.Sprintf("core: global shape %v does not match %v", gs, d))
	}
	out := make([]DistTensor3, d.Grid3.Size())
	for r := range out {
		sh := NewDistTensor3(d, r)
		rn, rd, rh, rw := d.RangeN(r), d.RangeD(r), d.RangeH(r), d.RangeW(r)
		sh.Local.InsertRegion(
			tensor.Region{Off: []int{0, 0, 0, 0, 0}, Size: []int{rn.Len(), d.C, rd.Len(), rh.Len(), rw.Len()}},
			global.ExtractRegion(tensor.Region{
				Off:  []int{rn.Lo, 0, rd.Lo, rh.Lo, rw.Lo},
				Size: []int{rn.Len(), d.C, rd.Len(), rh.Len(), rw.Len()},
			}))
		out[r] = sh
	}
	return out
}

// Gather3 reassembles the global tensor from shards.
func Gather3(shards []DistTensor3) *tensor.Tensor {
	d := shards[0].Dist
	global := tensor.New(d.N, d.C, d.D, d.H, d.W)
	for _, sh := range shards {
		rn, rd, rh, rw := d.RangeN(sh.Rank), d.RangeD(sh.Rank), d.RangeH(sh.Rank), d.RangeW(sh.Rank)
		global.InsertRegion(
			tensor.Region{Off: []int{rn.Lo, 0, rd.Lo, rh.Lo, rw.Lo}, Size: []int{rn.Len(), d.C, rd.Len(), rh.Len(), rw.Len()}},
			sh.Local.Data())
	}
	return global
}

// ext3 is a halo-extended 5-D buffer; element (·,·,0,0,0) corresponds to
// global coordinates (DLo, HLo, WLo).
type ext3 struct {
	T             *tensor.Tensor
	DLo, HLo, WLo int

	buf *[]float32 // workspace handle when storage is borrowed
}

// release returns workspace-backed storage to ws.
func (e *ext3) release(ws *kernels.Workspace) {
	if e.buf != nil {
		ws.Put(e.buf)
		e.buf = nil
		e.T = nil
	}
}

// newExt3 borrows a zeroed halo-extended buffer from ws.
func newExt3(ws *kernels.Workspace, n, c, d, h, w, dLo, hLo, wLo int) ext3 {
	buf := ws.GetZeroed(n * c * d * h * w)
	return ext3{T: tensor.FromSlice(*buf, n, c, d, h, w), DLo: dLo, HLo: hLo, WLo: wLo, buf: buf}
}

// Conv3D is the distributed 3-D convolution layer over a Grid3.
type Conv3D struct {
	Geom    dist.ConvGeom
	InDist  dist.Dist3
	OutDist dist.Dist3

	W  *tensor.Tensor // [F, C, K, K, K]
	DW *tensor.Tensor

	// DeferAllreduce as in the 2-D layer.
	DeferAllreduce bool

	grid dist.Grid3
	tag  int

	// ws supplies the halo-extended and alignment buffers, reused across
	// steps (see Conv.ws).
	ws *kernels.Workspace

	xExt   ext3
	hasExt bool
}

// NewConv3D constructs the layer; every rank of the grid must construct
// layers in the same order.
func NewConv3D(ctx *Ctx3, inDist dist.Dist3, f int, geom dist.ConvGeom) *Conv3D {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	od, oh, ow := geom.OutSize(inDist.D), geom.OutSize(inDist.H), geom.OutSize(inDist.W)
	if od < inDist.Grid3.PD || oh < inDist.Grid3.PH || ow < inDist.Grid3.PW {
		panic(fmt.Sprintf("core: 3-D output %dx%dx%d too small for grid %v", od, oh, ow, inDist.Grid3))
	}
	return &Conv3D{
		Geom:    geom,
		InDist:  inDist,
		OutDist: dist.Dist3{Grid3: inDist.Grid3, N: inDist.N, C: f, D: od, H: oh, W: ow},
		W:       tensor.New(f, inDist.C, geom.K, geom.K, geom.K),
		DW:      tensor.New(f, inDist.C, geom.K, geom.K, geom.K),
		grid:    inDist.Grid3,
		tag:     ctx.AllocTags(8),
		ws:      kernels.DefaultWorkspace(),
	}
}

// Ctx3 is the per-rank context for 3-D grids.
type Ctx3 struct {
	C    *comm.Comm
	Grid dist.Grid3
	Rank int

	nextTag int
}

// NewCtx3 builds the 3-D context (collective over c).
func NewCtx3(c *comm.Comm, grid dist.Grid3) *Ctx3 {
	if c.Size() != grid.Size() {
		panic(fmt.Sprintf("core: communicator size %d != grid size %d", c.Size(), grid.Size()))
	}
	return &Ctx3{C: c, Grid: grid, Rank: c.Rank()}
}

// AllocTags reserves n tags (deterministic across ranks).
func (ctx *Ctx3) AllocTags(n int) int {
	t := ctx.nextTag
	ctx.nextTag += n
	if ctx.nextTag >= 1<<19 {
		panic("core: 3-D tag space exhausted")
	}
	return t
}

// exchange3 performs the three-phase halo exchange for the forward input:
// the returned buffer covers the union of owned and required boxes with
// out-of-range positions holding materialized zero padding.
func (l *Conv3D) exchange3(ctx *Ctx3, local *tensor.Tensor) ext3 {
	g := l.grid
	pn, pd, ph, pw := g.Coords(ctx.Rank)
	in := l.InDist
	nLoc := in.RangeN(ctx.Rank).Len()

	reqOf := func(size, parts, outSize int) func(j int) dist.Range {
		return func(j int) dist.Range {
			return l.Geom.RequiredIn(dist.BlockPartition(outSize, parts, j))
		}
	}
	reqD := reqOf(in.D, g.PD, l.OutDist.D)
	reqH := reqOf(in.H, g.PH, l.OutDist.H)
	reqW := reqOf(in.W, g.PW, l.OutDist.W)

	ownD, ownH, ownW := in.RangeD(ctx.Rank), in.RangeH(ctx.Rank), in.RangeW(ctx.Rank)
	extD := union(reqD(pd), ownD)
	extH := union(reqH(ph), ownH)
	extW := union(reqW(pw), ownW)

	ext := newExt3(l.ws, nLoc, in.C, extD.Len(), extH.Len(), extW.Len(), extD.Lo, extH.Lo, extW.Lo)
	// Owned block.
	ext.T.InsertRegion(tensor.Region{
		Off:  []int{0, 0, ownD.Lo - extD.Lo, ownH.Lo - extH.Lo, ownW.Lo - extW.Lo},
		Size: []int{nLoc, in.C, ownD.Len(), ownH.Len(), ownW.Len()},
	}, local.Data())

	// Phase W: column strips of owned D and H.
	recvW, sendW := dist.Exchanges1D(in.W, g.PW, pw, reqW)
	for _, tr := range sendW {
		peer := g.Rank(pn, pd, ph, tr.Peer)
		buf := comm.GetBuf(nLoc * in.C * ownD.Len() * ownH.Len() * tr.Rng.Len())
		local.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, 0, 0, tr.Rng.Lo - ownW.Lo},
			Size: []int{nLoc, in.C, ownD.Len(), ownH.Len(), tr.Rng.Len()},
		}, buf)
		ctx.C.SendNoCopy(peer, l.tag, buf)
	}
	for _, tr := range recvW {
		peer := g.Rank(pn, pd, ph, tr.Peer)
		got := ctx.C.Recv(peer, l.tag)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, ownD.Lo - extD.Lo, ownH.Lo - extH.Lo, tr.Rng.Lo - extW.Lo},
			Size: []int{nLoc, in.C, ownD.Len(), ownH.Len(), tr.Rng.Len()},
		}, got)
		ctx.C.Release(got)
	}
	// Phase H: strips of owned D, full extended W.
	recvH, sendH := dist.Exchanges1D(in.H, g.PH, ph, reqH)
	for _, tr := range sendH {
		peer := g.Rank(pn, pd, tr.Peer, pw)
		buf := comm.GetBuf(nLoc * in.C * ownD.Len() * tr.Rng.Len() * extW.Len())
		ext.T.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, ownD.Lo - extD.Lo, tr.Rng.Lo - extH.Lo, 0},
			Size: []int{nLoc, in.C, ownD.Len(), tr.Rng.Len(), extW.Len()},
		}, buf)
		ctx.C.SendNoCopy(peer, l.tag+1, buf)
	}
	for _, tr := range recvH {
		peer := g.Rank(pn, pd, tr.Peer, pw)
		got := ctx.C.Recv(peer, l.tag+1)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, ownD.Lo - extD.Lo, tr.Rng.Lo - extH.Lo, 0},
			Size: []int{nLoc, in.C, ownD.Len(), tr.Rng.Len(), extW.Len()},
		}, got)
		ctx.C.Release(got)
	}
	// Phase D: full extended H and W slabs.
	recvD, sendD := dist.Exchanges1D(in.D, g.PD, pd, reqD)
	for _, tr := range sendD {
		peer := g.Rank(pn, tr.Peer, ph, pw)
		buf := comm.GetBuf(nLoc * in.C * tr.Rng.Len() * extH.Len() * extW.Len())
		ext.T.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - extD.Lo, 0, 0},
			Size: []int{nLoc, in.C, tr.Rng.Len(), extH.Len(), extW.Len()},
		}, buf)
		ctx.C.SendNoCopy(peer, l.tag+2, buf)
	}
	for _, tr := range recvD {
		peer := g.Rank(pn, tr.Peer, ph, pw)
		got := ctx.C.Recv(peer, l.tag+2)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - extD.Lo, 0, 0},
			Size: []int{nLoc, in.C, tr.Rng.Len(), extH.Len(), extW.Len()},
		}, got)
		ctx.C.Release(got)
	}
	return ext
}

// Forward computes this rank's output shard.
func (l *Conv3D) Forward(ctx *Ctx3, x DistTensor3) DistTensor3 {
	if !x.Dist.SameLayout(l.InDist) {
		panic(fmt.Sprintf("core: conv3d input dist %v, want %v", x.Dist, l.InDist))
	}
	// Recycle the previous step's buffer for forward-only (inference) use.
	l.xExt.release(l.ws)
	ext := l.exchange3(ctx, x.Local)
	y := NewDistTensor3(l.OutDist, ctx.Rank)
	// Align the ext buffer to the required window so the pad=0 kernel sees
	// position oz*S+kd for local output oz (cf. Conv.alignedInput).
	sub, subBuf := l.alignedExt(ctx, ext)
	kernels.Conv3DForward(sub, l.W, nil, y.Local, l.Geom.S, 0)
	if subBuf != nil {
		l.ws.Put(subBuf)
	}
	l.xExt = ext
	l.hasExt = true
	return y
}

// alignedExt returns the required window of ext (a workspace-backed copy
// when offsets or sizes differ; the second result is its handle, nil when
// ext was returned as-is).
func (l *Conv3D) alignedExt(ctx *Ctx3, ext ext3) (*tensor.Tensor, *[]float32) {
	od := l.OutDist.RangeD(ctx.Rank).Len()
	oh := l.OutDist.RangeH(ctx.Rank).Len()
	ow := l.OutDist.RangeW(ctx.Rank).Len()
	k, s := l.Geom.K, l.Geom.S
	needD, needH, needW := (od-1)*s+k, (oh-1)*s+k, (ow-1)*s+k
	reqD := l.Geom.RequiredIn(l.OutDist.RangeD(ctx.Rank))
	reqH := l.Geom.RequiredIn(l.OutDist.RangeH(ctx.Rank))
	reqW := l.Geom.RequiredIn(l.OutDist.RangeW(ctx.Rank))
	ad, ah, aw := reqD.Lo-ext.DLo, reqH.Lo-ext.HLo, reqW.Lo-ext.WLo
	es := ext.T.Shape()
	if ad == 0 && ah == 0 && aw == 0 && es[2] == needD && es[3] == needH && es[4] == needW {
		return ext.T, nil
	}
	n, c := es[0], es[1]
	buf := l.ws.Get(n * c * needD * needH * needW)
	sub := tensor.FromSlice(*buf, n, c, needD, needH, needW)
	sub.CopyRegion(
		tensor.Region{Off: []int{0, 0, 0, 0, 0}, Size: sub.Shape()},
		ext.T,
		tensor.Region{Off: []int{0, 0, ad, ah, aw}, Size: []int{n, c, needD, needH, needW}})
	return sub, buf
}

// Backward computes dw (allreduced unless deferred) and the parent error
// signal via a 3-D halo exchange of dy and the gather-form backward-data
// kernel.
func (l *Conv3D) Backward(ctx *Ctx3, dy DistTensor3) DistTensor3 {
	if !l.hasExt {
		panic("core: conv3d Backward before Forward")
	}
	// dw from the saved (aligned) forward input and local dy.
	xAligned, xBuf := l.alignedExt(ctx, l.xExt)
	kernels.Conv3DBackwardFilter(xAligned, dy.Local, l.DW, l.Geom.S, 0, false)
	if xBuf != nil {
		l.ws.Put(xBuf)
	}
	l.xExt.release(l.ws)

	// dy halo exchange: required boxes come from RequiredBwd per dimension.
	dyExt := l.exchangeBwd(ctx, dy.Local)
	dx := NewDistTensor3(l.InDist, ctx.Rank)
	inD := l.InDist.RangeD(ctx.Rank)
	inH := l.InDist.RangeH(ctx.Rank)
	inW := l.InDist.RangeW(ctx.Rank)
	kernels.Conv3DBackwardDataRegion(dyExt.T, l.W, dx.Local, l.Geom.S, l.Geom.Pad,
		inD.Lo, inH.Lo, inW.Lo, dyExt.DLo, dyExt.HLo, dyExt.WLo)
	dyExt.release(l.ws)
	if !l.DeferAllreduce {
		l.ReduceGradients(ctx)
	}
	l.hasExt = false
	l.xExt = ext3{}
	return dx
}

// ReduceGradients completes the deferred weight-gradient sum: the 3-D
// analogue of Conv.ReduceGradients, rank-order stable for the same
// schedule-independence guarantee. Callers that set DeferAllreduce either
// call it directly or hand DW to a non-blocking IAllreduce.
func (l *Conv3D) ReduceGradients(ctx *Ctx3) {
	if ctx.C.Size() == 1 {
		return
	}
	ctx.C.AllreduceAlgo(l.DW.Data(), comm.OpSum, comm.AllreduceStableRing)
}

// exchangeBwd runs the three-phase exchange for dy using RequiredBwd boxes.
func (l *Conv3D) exchangeBwd(ctx *Ctx3, dyLocal *tensor.Tensor) ext3 {
	g := l.grid
	pn, pd, ph, pw := g.Coords(ctx.Rank)
	out := l.OutDist
	nLoc := out.RangeN(ctx.Rank).Len()

	reqD := func(j int) dist.Range {
		return l.Geom.RequiredBwd(dist.BlockPartition(l.InDist.D, g.PD, j), out.D)
	}
	reqH := func(j int) dist.Range {
		return l.Geom.RequiredBwd(dist.BlockPartition(l.InDist.H, g.PH, j), out.H)
	}
	reqW := func(j int) dist.Range {
		return l.Geom.RequiredBwd(dist.BlockPartition(l.InDist.W, g.PW, j), out.W)
	}
	ownD, ownH, ownW := out.RangeD(ctx.Rank), out.RangeH(ctx.Rank), out.RangeW(ctx.Rank)
	extD := union(reqD(pd), ownD)
	extH := union(reqH(ph), ownH)
	extW := union(reqW(pw), ownW)
	ext := newExt3(l.ws, nLoc, out.C, extD.Len(), extH.Len(), extW.Len(), extD.Lo, extH.Lo, extW.Lo)
	ext.T.InsertRegion(tensor.Region{
		Off:  []int{0, 0, ownD.Lo - extD.Lo, ownH.Lo - extH.Lo, ownW.Lo - extW.Lo},
		Size: []int{nLoc, out.C, ownD.Len(), ownH.Len(), ownW.Len()},
	}, dyLocal.Data())

	recvW, sendW := dist.Exchanges1D(out.W, g.PW, pw, reqW)
	for _, tr := range sendW {
		peer := g.Rank(pn, pd, ph, tr.Peer)
		buf := comm.GetBuf(nLoc * out.C * ownD.Len() * ownH.Len() * tr.Rng.Len())
		dyLocal.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, 0, 0, tr.Rng.Lo - ownW.Lo},
			Size: []int{nLoc, out.C, ownD.Len(), ownH.Len(), tr.Rng.Len()},
		}, buf)
		ctx.C.SendNoCopy(peer, l.tag+4, buf)
	}
	for _, tr := range recvW {
		peer := g.Rank(pn, pd, ph, tr.Peer)
		got := ctx.C.Recv(peer, l.tag+4)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, ownD.Lo - extD.Lo, ownH.Lo - extH.Lo, tr.Rng.Lo - extW.Lo},
			Size: []int{nLoc, out.C, ownD.Len(), ownH.Len(), tr.Rng.Len()},
		}, got)
		ctx.C.Release(got)
	}
	recvH, sendH := dist.Exchanges1D(out.H, g.PH, ph, reqH)
	for _, tr := range sendH {
		peer := g.Rank(pn, pd, tr.Peer, pw)
		buf := comm.GetBuf(nLoc * out.C * ownD.Len() * tr.Rng.Len() * extW.Len())
		ext.T.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, ownD.Lo - extD.Lo, tr.Rng.Lo - extH.Lo, 0},
			Size: []int{nLoc, out.C, ownD.Len(), tr.Rng.Len(), extW.Len()},
		}, buf)
		ctx.C.SendNoCopy(peer, l.tag+5, buf)
	}
	for _, tr := range recvH {
		peer := g.Rank(pn, pd, tr.Peer, pw)
		got := ctx.C.Recv(peer, l.tag+5)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, ownD.Lo - extD.Lo, tr.Rng.Lo - extH.Lo, 0},
			Size: []int{nLoc, out.C, ownD.Len(), tr.Rng.Len(), extW.Len()},
		}, got)
		ctx.C.Release(got)
	}
	recvD, sendD := dist.Exchanges1D(out.D, g.PD, pd, reqD)
	for _, tr := range sendD {
		peer := g.Rank(pn, tr.Peer, ph, pw)
		buf := comm.GetBuf(nLoc * out.C * tr.Rng.Len() * extH.Len() * extW.Len())
		ext.T.ExtractRegionInto(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - extD.Lo, 0, 0},
			Size: []int{nLoc, out.C, tr.Rng.Len(), extH.Len(), extW.Len()},
		}, buf)
		ctx.C.SendNoCopy(peer, l.tag+6, buf)
	}
	for _, tr := range recvD {
		peer := g.Rank(pn, tr.Peer, ph, pw)
		got := ctx.C.Recv(peer, l.tag+6)
		ext.T.InsertRegion(tensor.Region{
			Off:  []int{0, 0, tr.Rng.Lo - extD.Lo, 0, 0},
			Size: []int{nLoc, out.C, tr.Rng.Len(), extH.Len(), extW.Len()},
		}, got)
		ctx.C.Release(got)
	}
	return ext
}
