// Package core implements the paper's primary contribution: distributed-
// memory convolution exploiting sample, spatial, and hybrid sample/spatial
// parallelism (Section III), together with the distributed tensor library
// of Section IV — halo exchanges with communication/computation overlap,
// distributed pooling, batch normalization, ReLU, data redistribution
// between distributions, and the channel/filter-parallel extensions of
// Section III-D.
//
// Every distributed operator exactly replicates its single-device
// counterpart in internal/kernels (up to floating-point accumulation
// order), which the test suite verifies by scattering inputs, running both
// paths, and comparing gathered results.
package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// DistTensor is one rank's shard of a global NCHW tensor under a blocked
// distribution: the partitioned-global-view data structure of Section IV.
type DistTensor struct {
	Dist  dist.Dist
	Rank  int
	Local *tensor.Tensor
}

// NewDistTensor allocates a zero shard for rank under d.
func NewDistTensor(d dist.Dist, rank int) DistTensor {
	s := d.LocalShape(rank)
	return DistTensor{Dist: d, Rank: rank, Local: tensor.New(s[0], s[1], s[2], s[3])}
}

// ownedRegion returns the global region owned by the shard's rank.
func (t DistTensor) ownedRegion() (rn, rc, rh, rw dist.Range) {
	return t.Dist.RangeN(t.Rank), t.Dist.RangeC(t.Rank), t.Dist.RangeH(t.Rank), t.Dist.RangeW(t.Rank)
}

// CheckShape panics if the local tensor does not match the distribution.
func (t DistTensor) CheckShape() {
	want := t.Dist.LocalShape(t.Rank)
	got := t.Local.Shape()
	if len(got) != 4 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		panic(fmt.Sprintf("core: local shape %v does not match distribution shard %v", got, want))
	}
}

// Scatter splits a global tensor into per-rank shards under d. It is the
// test/IO entry point (the data reader provides input "in the appropriate
// distribution for the first layer", Section III-B).
func Scatter(global *tensor.Tensor, d dist.Dist) []DistTensor {
	gs := global.Shape()
	if gs[0] != d.N || gs[1] != d.C || gs[2] != d.H || gs[3] != d.W {
		panic(fmt.Sprintf("core: global shape %v does not match distribution %v", gs, d))
	}
	shards := make([]DistTensor, d.Grid.Size())
	for r := range shards {
		sh := NewDistTensor(d, r)
		rn, rc, rh, rw := sh.ownedRegion()
		sh.Local.InsertRegion(
			tensor.Region{Off: []int{0, 0, 0, 0}, Size: []int{rn.Len(), rc.Len(), rh.Len(), rw.Len()}},
			global.ExtractRegion(tensor.Region{
				Off:  []int{rn.Lo, rc.Lo, rh.Lo, rw.Lo},
				Size: []int{rn.Len(), rc.Len(), rh.Len(), rw.Len()},
			}))
		shards[r] = sh
	}
	return shards
}

// Gather reassembles the global tensor from all shards (test/IO helper).
func Gather(shards []DistTensor) *tensor.Tensor {
	d := shards[0].Dist
	global := tensor.New(d.N, d.C, d.H, d.W)
	for _, sh := range shards {
		rn, rc, rh, rw := sh.ownedRegion()
		global.InsertRegion(
			tensor.Region{Off: []int{rn.Lo, rc.Lo, rh.Lo, rw.Lo}, Size: []int{rn.Len(), rc.Len(), rh.Len(), rw.Len()}},
			sh.Local.ExtractRegion(tensor.Region{
				Off:  []int{0, 0, 0, 0},
				Size: []int{rn.Len(), rc.Len(), rh.Len(), rw.Len()},
			}))
	}
	return global
}

// Ctx carries the per-rank communication state shared by the distributed
// layers of one network replica. Besides the full-grid communicator it
// holds the three axis-aligned sub-communicators the layers reduce over:
//
//   - Spatial: ranks sharing this rank's (sample, channel) group — the
//     group GlobalAvgPool and the spatial-statistics reductions span.
//   - Chan: ranks sharing this rank's (sample, spatial) position and
//     varying only along the channel axis — the group channel/filter-
//     parallel convolutions allreduce/allgather activations over. Its rank
//     order is the channel-block order (Chan.Rank() == pc).
//   - ChanPeers: ranks sharing this rank's channel block (same pc, any
//     sample/spatial position) — the group that holds identical copies of
//     channel-sharded parameters, so weight-gradient and batchnorm-
//     statistics reductions run over it. With PC == 1 it is the whole
//     grid, which reproduces the legacy replicated-parameter behaviour.
type Ctx struct {
	C         *comm.Comm // communicator over all grid ranks, grid-rank ordered
	Grid      dist.Grid
	Spatial   *comm.Comm // ranks sharing this rank's (pn, pc) group
	Chan      *comm.Comm // ranks sharing (pn, ph, pw), ordered by pc
	ChanPeers *comm.Comm // ranks sharing pc, ordered by (pn, ph, pw)
	Rank      int        // grid rank == C.Rank()

	nextTag int
}

// AllocTags reserves n point-to-point tags for a layer. Layer construction
// order is identical on every rank, so all ranks agree on the assignment.
func (ctx *Ctx) AllocTags(n int) int {
	t := ctx.nextTag
	ctx.nextTag += n
	if ctx.nextTag >= 1<<19 {
		panic("core: point-to-point tag space exhausted")
	}
	return t
}

// NewCtx builds the per-rank context: it must be called collectively by
// every rank of c, with c.Size() == grid.Size().
func NewCtx(c *comm.Comm, grid dist.Grid) *Ctx {
	return NewCtxAt(c, grid, 0)
}

// NewCtxAt is NewCtx with an explicit starting point-to-point tag, for
// networks that mix several grids over one communicator (a separate Ctx per
// grid, sharing the tag space). Collective over c.
func NewCtxAt(c *comm.Comm, grid dist.Grid, tagStart int) *Ctx {
	if c.Size() != grid.Size() {
		panic(fmt.Sprintf("core: communicator size %d != grid size %d", c.Size(), grid.Size()))
	}
	grid = grid.Norm()
	pn, pc, ph, pw := grid.Coords(c.Rank())
	sp := c.Split(pn*grid.PC+pc, c.Rank())
	ch := c.Split((pn*grid.PH+ph)*grid.PW+pw, c.Rank())
	peers := c.Split(pc, c.Rank())
	return &Ctx{C: c, Grid: grid, Spatial: sp, Chan: ch, ChanPeers: peers, Rank: c.Rank(), nextTag: tagStart}
}

// Coords returns this rank's grid coordinates.
func (ctx *Ctx) Coords() (pn, pc, ph, pw int) { return ctx.Grid.Coords(ctx.Rank) }
