package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// BatchNormMode selects how statistics are aggregated under distribution
// (Section III-B discusses both variants).
type BatchNormMode int

// Batch normalization aggregation modes.
const (
	// BatchNormGlobal aggregates statistics over all processors — the
	// "aggregates over the spatial distribution" variant; it exactly
	// replicates single-device batch normalization.
	BatchNormGlobal BatchNormMode = iota
	// BatchNormLocal computes statistics purely locally on each processor's
	// shard (the traditional data-parallel behaviour).
	BatchNormLocal
)

// BatchNorm is a distributed batch normalization layer with learnable scale
// (gamma) and shift (beta).
type BatchNorm struct {
	Dist dist.Dist
	Mode BatchNormMode
	Eps  float32

	Gamma, Beta   []float32
	DGamma, DBeta []float32

	// Running statistics for inference.
	RunMean, RunVar []float32
	Momentum        float32

	x      *tensor.Tensor // saved input shard
	c      int            // local channel count (this rank's block of Dist.C)
	mean   []float32
	invstd []float32
	count  int

	// inference marks a forward-only layer (NewBatchNormInference): Forward
	// normalizes with the running statistics (no aggregation, no stash) and
	// Backward panics. y is its preallocated output shard, reused across
	// calls so warm serving forwards allocate nothing.
	inference bool
	y         DistTensor

	// Step-persistent scratch: the stats and backward-sums buffers are owned
	// by the layer and reused across training steps, so a warm step
	// allocates nothing here.
	stats []float32 // [sum | sumsq | count], length 2C+1
	sums  []float32 // [dgamma | dbeta], length 2C
}

// NewBatchNorm constructs the layer for activations distributed as d. When
// d splits the channel axis, the layer holds gamma/beta (and statistics)
// only for this rank's channel block, and aggregates over the ranks sharing
// that block (ctx.ChanPeers) — with PC == 1 that is every processor,
// exactly replicating single-device batch normalization.
func NewBatchNorm(ctx *Ctx, d dist.Dist, mode BatchNormMode) *BatchNorm {
	c := d.RangeC(ctx.Rank).Len()
	l := newBatchNorm(d, mode, c)
	l.DGamma = make([]float32, c)
	l.DBeta = make([]float32, c)
	l.stats = make([]float32, 2*c+1)
	l.sums = make([]float32, 2*c)
	return l
}

func newBatchNorm(d dist.Dist, mode BatchNormMode, c int) *BatchNorm {
	l := &BatchNorm{
		c:    c,
		Dist: d, Mode: mode, Eps: 1e-5, Momentum: 0.9,
		Gamma: make([]float32, c), Beta: make([]float32, c),
		RunMean: make([]float32, c), RunVar: make([]float32, c),
		mean: make([]float32, c), invstd: make([]float32, c),
	}
	for i := range l.Gamma {
		l.Gamma[i] = 1
		l.RunVar[i] = 1
	}
	return l
}

// Forward normalizes the local shard with (optionally) globally aggregated
// statistics.
func (l *BatchNorm) Forward(ctx *Ctx, x DistTensor) DistTensor {
	if !x.Dist.SameLayout(l.Dist) {
		panic(fmt.Sprintf("core: batchnorm input dist %v, want %v", x.Dist, l.Dist))
	}
	if l.inference {
		// Running statistics are replicated within the channel block, so no
		// aggregation is needed and nothing is stashed for a backward pass
		// that will never come. The persistent output shard is overwritten
		// by the next call.
		kernels.BatchNormInference(x.Local, l.RunMean, l.RunVar, l.Gamma, l.Beta, l.Eps, l.y.Local)
		return l.y
	}
	c := l.c
	stats := l.stats
	kernels.BatchNormStats(x.Local, stats[:c], stats[c:2*c])
	ls := x.Local.Shape()
	stats[2*c] = float32(ls[0] * ls[2] * ls[3])
	if l.Mode == BatchNormGlobal && ctx.ChanPeers.Size() > 1 {
		ctx.ChanPeers.Allreduce(stats, comm.OpSum)
	}
	l.count = int(stats[2*c])
	kernels.BatchNormMoments(stats[:c], stats[c:2*c], l.count, l.Eps, l.mean, l.invstd)
	// Update running statistics (replicated, so ranks stay consistent).
	for ci := 0; ci < c; ci++ {
		m := l.mean[ci]
		v := stats[c+ci]/float32(l.count) - m*m
		l.RunMean[ci] = l.Momentum*l.RunMean[ci] + (1-l.Momentum)*m
		l.RunVar[ci] = l.Momentum*l.RunVar[ci] + (1-l.Momentum)*v
	}
	y := NewDistTensor(l.Dist, ctx.Rank)
	kernels.BatchNormForward(x.Local, l.mean, l.invstd, l.Gamma, l.Beta, y.Local)
	l.x = x.Local
	return y
}

// Backward computes dgamma/dbeta (reduced over the statistics group — they
// double as the parameter gradients) and the input error signal.
//
// Unlike convolution weight gradients, this reduction cannot be deferred:
// the backward-data kernel consumes the globally-reduced sums, so the
// allreduce sits on the critical path and DGamma/DBeta emerge already
// complete — the gradient-overlap engine must not (and does not) reduce
// them again.
func (l *BatchNorm) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	if l.DGamma == nil {
		panic("core: Backward on an inference-only BatchNorm (NewBatchNormInference)")
	}
	if l.x == nil {
		panic("core: batchnorm Backward called before Forward")
	}
	c := l.c
	sums := l.sums
	kernels.BatchNormBackwardStats(l.x, dy.Local, l.mean, l.invstd, sums[:c], sums[c:])
	if l.Mode == BatchNormGlobal && ctx.ChanPeers.Size() > 1 {
		ctx.ChanPeers.Allreduce(sums, comm.OpSum)
	}
	copy(l.DGamma, sums[:c])
	copy(l.DBeta, sums[c:])
	dx := NewDistTensor(l.Dist, ctx.Rank)
	kernels.BatchNormBackwardData(l.x, dy.Local, l.mean, l.invstd, l.Gamma,
		l.DGamma, l.DBeta, l.count, dx.Local)
	l.x = nil
	return dx
}

// GradientWords returns the allreduce payload for the performance model
// (batchnorm has learnable parameters, Section V-B).
func (l *BatchNorm) GradientWords() int { return 2 * l.c }

// ReLU is a distributed rectified linear unit; elementwise, so it
// parallelizes trivially regardless of distribution (Section III-B).
type ReLU struct {
	Dist dist.Dist
	x    *tensor.Tensor
}

// NewReLU constructs the layer.
func NewReLU(d dist.Dist) *ReLU { return &ReLU{Dist: d} }

// Forward applies max(0, x) to the local shard.
func (l *ReLU) Forward(ctx *Ctx, x DistTensor) DistTensor {
	y := NewDistTensor(l.Dist, ctx.Rank)
	kernels.ReLUForward(x.Local, y.Local)
	l.x = x.Local
	return y
}

// Backward masks the error signal by the forward sign pattern.
func (l *ReLU) Backward(ctx *Ctx, dy DistTensor) DistTensor {
	dx := NewDistTensor(l.Dist, ctx.Rank)
	kernels.ReLUBackward(l.x, dy.Local, dx.Local)
	l.x = nil
	return dx
}

// Add is the elementwise sum joining residual branches.
type Add struct {
	Dist dist.Dist
}

// NewAdd constructs the layer.
func NewAdd(d dist.Dist) *Add { return &Add{Dist: d} }

// Forward computes a + b on local shards (distributions must match).
func (l *Add) Forward(ctx *Ctx, a, b DistTensor) DistTensor {
	out := NewDistTensor(l.Dist, ctx.Rank)
	kernels.Add(a.Local, b.Local, out.Local)
	return out
}

// Backward passes dy to both branches unchanged.
func (l *Add) Backward(ctx *Ctx, dy DistTensor) (DistTensor, DistTensor) {
	a := NewDistTensor(l.Dist, ctx.Rank)
	copy(a.Local.Data(), dy.Local.Data())
	b := NewDistTensor(l.Dist, ctx.Rank)
	copy(b.Local.Data(), dy.Local.Data())
	return a, b
}
