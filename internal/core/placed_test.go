package core

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// channelGrids are the 4-axis grids the placed-conv tests exercise: pure
// channel splits and channel x sample hybrids.
var channelGrids = []dist.Grid{
	{PN: 1, PC: 1, PH: 1, PW: 1},
	{PN: 1, PC: 2, PH: 1, PW: 1},
	{PN: 1, PC: 4, PH: 1, PW: 1},
	{PN: 2, PC: 2, PH: 1, PW: 1},
}

func cloneTensor(t *tensor.Tensor) *tensor.Tensor {
	c := tensor.New(t.Shape()...)
	copy(c.Data(), t.Data())
	return c
}

// runPlacedConv runs one placed conv layer (channel- or filter-parallel)
// over grid g and compares gathered outputs, error signals, and gradient
// shards against the sequential kernels.
func runPlacedConv(t *testing.T, g dist.Grid, filter, bias bool) {
	t.Helper()
	n, c, h, wd, f := 4, 8, 8, 8, 6
	geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
	x := tensor.New(n, c, h, wd)
	x.FillRandN(23, 1)
	w := tensor.New(f, c, 3, 3)
	w.FillRandN(24, 0.5)
	var b []float32
	if bias {
		b = []float32{0.1, -0.2, 0.3, -0.4, 0.5, -0.6}
	}
	dy := tensor.New(n, f, h, wd)
	dy.FillRandN(25, 1)

	ySeq := tensor.New(n, f, h, wd)
	kernels.ConvForward(x, w, b, ySeq, 1, 1, kernels.ConvDirect)
	dxSeq := tensor.New(n, c, h, wd)
	kernels.ConvBackwardData(dy, w, dxSeq, 1, 1)
	dwSeq := tensor.New(f, c, 3, 3)
	kernels.ConvBackwardFilter(x, dy, dwSeq, 1, 1, false)
	dbSeq := make([]float32, f)
	kernels.BiasBackward(dy, dbSeq, false)

	inDist := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
	outDist := dist.Dist{Grid: g, N: n, C: f, H: h, W: wd}
	xs := Scatter(x, inDist)
	dys := Scatter(dy, outDist)

	p := g.Size()
	ys := make([]DistTensor, p)
	dxs := make([]DistTensor, p)
	dws := make([]*tensor.Tensor, p)
	dbs := make([][]float32, p)
	crs := make([]dist.Range, p)
	frs := make([]dist.Range, p)
	var mu sync.Mutex
	world := comm.NewWorld(p)
	world.Run(func(cm *comm.Comm) {
		ctx := NewCtx(cm, g)
		var y, dx DistTensor
		var dw *tensor.Tensor
		var db []float32
		var cr, fr dist.Range
		if filter {
			l := NewFilterParallelConv(ctx, inDist, f, geom, bias)
			cr, fr = l.CRange, l.FRange
			l.W.InsertRegion(
				tensor.Region{Off: []int{0, 0, 0, 0}, Size: []int{fr.Len(), c, 3, 3}},
				w.ExtractRegion(tensor.Region{Off: []int{fr.Lo, 0, 0, 0}, Size: []int{fr.Len(), c, 3, 3}}))
			if bias {
				copy(l.Bias, b[fr.Lo:fr.Hi])
			}
			y = l.Forward(ctx, xs[ctx.Rank])
			dx = l.Backward(ctx, dys[ctx.Rank])
			dw, db = l.DW, l.DBias
		} else {
			l := NewChannelParallelConv(ctx, inDist, f, geom, bias)
			cr, fr = l.CRange, l.FRange
			l.W.InsertRegion(
				tensor.Region{Off: []int{0, 0, 0, 0}, Size: []int{f, cr.Len(), 3, 3}},
				w.ExtractRegion(tensor.Region{Off: []int{0, cr.Lo, 0, 0}, Size: []int{f, cr.Len(), 3, 3}}))
			if bias {
				copy(l.Bias, b)
			}
			y = l.Forward(ctx, xs[ctx.Rank])
			dx = l.Backward(ctx, dys[ctx.Rank])
			dw, db = l.DW, l.DBias
		}
		mu.Lock()
		ys[ctx.Rank] = DistTensor{Dist: y.Dist, Rank: y.Rank, Local: cloneTensor(y.Local)}
		dxs[ctx.Rank] = DistTensor{Dist: dx.Dist, Rank: dx.Rank, Local: cloneTensor(dx.Local)}
		dws[ctx.Rank] = cloneTensor(dw)
		if db != nil {
			dbs[ctx.Rank] = append([]float32(nil), db...)
		}
		crs[ctx.Rank], frs[ctx.Rank] = cr, fr
		mu.Unlock()
	})

	if d := Gather(ys).RelDiff(ySeq); d > 1e-4 {
		t.Errorf("grid %v: gathered y rel diff %g", g, d)
	}
	if d := Gather(dxs).RelDiff(dxSeq); d > 1e-4 {
		t.Errorf("grid %v: gathered dx rel diff %g", g, d)
	}
	for r := 0; r < p; r++ {
		var want []float32
		if filter {
			fr := frs[r]
			want = dwSeq.ExtractRegion(tensor.Region{Off: []int{fr.Lo, 0, 0, 0}, Size: []int{fr.Len(), c, 3, 3}})
		} else {
			cr := crs[r]
			want = dwSeq.ExtractRegion(tensor.Region{Off: []int{0, cr.Lo, 0, 0}, Size: []int{f, cr.Len(), 3, 3}})
		}
		got := dws[r].Data()
		for i := range want {
			if d := float64(got[i] - want[i]); d > 1e-3 || d < -1e-3 {
				t.Fatalf("grid %v rank %d: dw[%d] = %v, want %v", g, r, i, got[i], want[i])
			}
		}
		if bias {
			wantB := dbSeq
			if filter {
				wantB = dbSeq[frs[r].Lo:frs[r].Hi]
			}
			for i := range wantB {
				if d := float64(dbs[r][i] - wantB[i]); d > 1e-3 || d < -1e-3 {
					t.Fatalf("grid %v rank %d: dbias[%d] = %v, want %v", g, r, i, dbs[r][i], wantB[i])
				}
			}
		}
	}
}

func TestChannelParallelConvMatchesSequential(t *testing.T) {
	for _, g := range channelGrids {
		runPlacedConv(t, g, false, false)
	}
	runPlacedConv(t, dist.Grid{PN: 1, PC: 2, PH: 1, PW: 1}, false, true)
}

func TestFilterParallelConvMatchesSequential(t *testing.T) {
	for _, g := range channelGrids {
		runPlacedConv(t, g, true, false)
	}
	runPlacedConv(t, dist.Grid{PN: 2, PC: 2, PH: 1, PW: 1}, true, true)
}

// TestPlacedConvDeterministic: two identical runs produce bitwise-identical
// outputs and gradients — the stable reductions pin the association order
// regardless of scheduling.
func TestPlacedConvDeterministic(t *testing.T) {
	g := dist.Grid{PN: 2, PC: 2, PH: 1, PW: 1}
	n, c, h, wd, f := 4, 6, 6, 6, 4
	geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
	x := tensor.New(n, c, h, wd)
	x.FillRandN(31, 1)
	w := tensor.New(f, c, 3, 3)
	w.FillRandN(32, 0.5)
	dy := tensor.New(n, f, h, wd)
	dy.FillRandN(33, 1)
	inDist := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
	outDist := dist.Dist{Grid: g, N: n, C: f, H: h, W: wd}

	run := func(filter bool) (*tensor.Tensor, *tensor.Tensor) {
		xs := Scatter(x, inDist)
		dys := Scatter(dy, outDist)
		p := g.Size()
		ys := make([]DistTensor, p)
		dxs := make([]DistTensor, p)
		var mu sync.Mutex
		world := comm.NewWorld(p)
		world.Run(func(cm *comm.Comm) {
			ctx := NewCtx(cm, g)
			var y, dx DistTensor
			if filter {
				l := NewFilterParallelConv(ctx, inDist, f, geom, false)
				l.W.InsertRegion(
					tensor.Region{Off: []int{0, 0, 0, 0}, Size: []int{l.FRange.Len(), c, 3, 3}},
					w.ExtractRegion(tensor.Region{Off: []int{l.FRange.Lo, 0, 0, 0}, Size: []int{l.FRange.Len(), c, 3, 3}}))
				y = l.Forward(ctx, xs[ctx.Rank])
				dx = l.Backward(ctx, dys[ctx.Rank])
			} else {
				l := NewChannelParallelConv(ctx, inDist, f, geom, false)
				l.W.InsertRegion(
					tensor.Region{Off: []int{0, 0, 0, 0}, Size: []int{f, l.CRange.Len(), 3, 3}},
					w.ExtractRegion(tensor.Region{Off: []int{0, l.CRange.Lo, 0, 0}, Size: []int{f, l.CRange.Len(), 3, 3}}))
				y = l.Forward(ctx, xs[ctx.Rank])
				dx = l.Backward(ctx, dys[ctx.Rank])
			}
			mu.Lock()
			ys[ctx.Rank] = DistTensor{Dist: y.Dist, Rank: y.Rank, Local: cloneTensor(y.Local)}
			dxs[ctx.Rank] = DistTensor{Dist: dx.Dist, Rank: dx.Rank, Local: cloneTensor(dx.Local)}
			mu.Unlock()
		})
		return Gather(ys), Gather(dxs)
	}

	for _, filter := range []bool{false, true} {
		y1, dx1 := run(filter)
		y2, dx2 := run(filter)
		for i, v := range y1.Data() {
			if y2.Data()[i] != v {
				t.Fatalf("filter=%v: y[%d] differs across identical runs", filter, i)
			}
		}
		for i, v := range dx1.Data() {
			if dx2.Data()[i] != v {
				t.Fatalf("filter=%v: dx[%d] differs across identical runs", filter, i)
			}
		}
	}
}

// TestPlacedConvZeroAllocsWarm: warm Forward/Backward of both placed conv
// layers allocate nothing — all step-transient buffers come from the
// workspace arena acquired at construction, and the channel collectives run
// on pooled message buffers.
func TestPlacedConvZeroAllocsWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	g := dist.Grid{PN: 1, PC: 2, PH: 1, PW: 1}
	n, c, h, wd, f := 2, 8, 8, 8, 4
	geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
	inDist := dist.Dist{Grid: g, N: n, C: c, H: h, W: wd}
	outDist := dist.Dist{Grid: g, N: n, C: f, H: h, W: wd}
	x := tensor.New(n, c, h, wd)
	x.FillRandN(41, 1)
	dy := tensor.New(n, f, h, wd)
	dy.FillRandN(42, 1)
	xs := Scatter(x, inDist)
	dys := Scatter(dy, outDist)

	for _, filter := range []bool{false, true} {
		var got float64
		var mu sync.Mutex
		world := comm.NewWorld(g.Size())
		world.Run(func(cm *comm.Comm) {
			ctx := NewCtx(cm, g)
			var step func()
			if filter {
				l := NewFilterParallelConv(ctx, inDist, f, geom, true)
				l.W.FillRandN(43, 0.5)
				step = func() {
					l.Forward(ctx, xs[ctx.Rank])
					l.Backward(ctx, dys[ctx.Rank])
				}
			} else {
				l := NewChannelParallelConv(ctx, inDist, f, geom, true)
				l.W.FillRandN(44, 0.5)
				step = func() {
					l.Forward(ctx, xs[ctx.Rank])
					l.Backward(ctx, dys[ctx.Rank])
				}
			}
			const warm, runs = 5, 10
			for i := 0; i < warm; i++ {
				step()
			}
			if ctx.Rank == 0 {
				a := testing.AllocsPerRun(runs, step)
				mu.Lock()
				got = a
				mu.Unlock()
			} else {
				for i := 0; i < runs+1; i++ {
					step()
				}
			}
		})
		if got != 0 {
			t.Errorf("filter=%v: %v allocs per warm step, want 0", filter, got)
		}
	}
}
