package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Placement experiment: real in-process training steps of an FC-heavy
// stack (1x1 convolutions over a tiny spatial domain with wide channels)
// under pure sample parallelism versus channel- and filter-parallel
// placements of the heavy layers. On this layer family the weight tensors
// dwarf the activations, so sample parallelism pays a large per-step
// gradient allreduce while a channel split shards the weights (no gradient
// traffic across the channel group) and only moves small activations —
// the Section III-D regime the Placement API opens.

// FCHeavyArch is a stack of wide 1x1 convolutions on a small spatial
// domain: a stand-in for FC-heavy heads and deep small-spatial trunks.
func FCHeavyArch(size, depth, ch int) *nn.Arch {
	b := nn.NewBuilder("fcheavy", nn.Shape{C: ch, H: size, W: size})
	c := b.Last()
	for i := 0; i < depth; i++ {
		c = b.Conv(fmt.Sprintf("fc%d", i), c, ch, dist.ConvGeom{K: 1, S: 1, Pad: 0}, false)
		c = b.ReLU(fmt.Sprintf("r%d", i), c)
	}
	b.Conv("pred", c, 4, dist.ConvGeom{K: 1, S: 1, Pad: 0}, false)
	return b.MustBuild()
}

// fcHeavyPlacements assigns pl to every heavy layer (the wide convs and
// the ReLUs between them) and base to input and predictor.
func fcHeavyPlacements(arch *nn.Arch, base, pl dist.Placement) []dist.Placement {
	pls := make([]dist.Placement, len(arch.Specs))
	for i := range pls {
		pls[i] = pl
	}
	pls[0] = base
	pls[len(pls)-1] = base
	return pls
}

// MeasureStrategyStep times one full training step (forward + backward,
// including all placement shuffles and gradient reductions) of arch under
// the given per-layer placements, averaged over iters.
func MeasureStrategyStep(arch *nn.Arch, pls []dist.Placement, n, iters int) float64 {
	old := kernels.SetMaxWorkers(1)
	defer kernels.SetMaxWorkers(old)

	in := arch.In
	x := tensor.New(n, in.C, in.H, in.W)
	x.FillPattern(0.3)
	outShape, _ := arch.Output()
	labels := make([]int32, n*outShape.H*outShape.W)
	for i := range labels {
		labels[i] = int32(i % outShape.C)
	}

	p := pls[0].Grid.Size()
	var mu sync.Mutex
	var secs float64
	world := comm.NewWorld(p)
	world.Run(func(c *comm.Comm) {
		base := core.NewCtx(c, pls[0].Grid)
		net, err := nn.NewStrategyNet(base, arch, n, 1, pls)
		if err != nil {
			panic(err)
		}
		xs := core.Scatter(x, net.InputDist())
		lbl := nn.ScatterLabels(labels, net.OutputDist())
		step := func() {
			logits := net.Forward(xs[base.Rank])
			_, dl := nn.DistSegLoss(net.OutputCtx(), logits, lbl[base.Rank])
			net.Backward(dl)
		}
		for i := 0; i < 2; i++ {
			step()
		}
		var tot time.Duration
		for it := 0; it < iters; it++ {
			base.C.Barrier()
			t0 := time.Now()
			step()
			base.C.Barrier()
			tot += time.Since(t0)
		}
		if base.Rank == 0 {
			mu.Lock()
			secs = tot.Seconds() / float64(iters)
			mu.Unlock()
		}
	})
	return secs
}

// PlacementTable produces the sample vs channel vs filter placement
// comparison on the FC-heavy stack (cmd/bench -exp placement).
func PlacementTable() *Table {
	const (
		size  = 2
		depth = 6
		ch    = 512
		n     = 4
		iters = 20
	)
	arch := FCHeavyArch(size, depth, ch)
	configs := []struct {
		name string
		pls  func(p int) []dist.Placement
	}{
		{"sample", func(p int) []dist.Placement {
			return fcHeavyPlacements(arch,
				dist.P(dist.Grid{PN: p, PH: 1, PW: 1}),
				dist.P(dist.Grid{PN: p, PH: 1, PW: 1}))
		}},
		{"channel", func(p int) []dist.Placement {
			return fcHeavyPlacements(arch,
				dist.P(dist.Grid{PN: p, PH: 1, PW: 1}),
				dist.Placement{Grid: dist.Grid{PN: 1, PC: p, PH: 1, PW: 1}, Split: dist.SplitChannel})
		}},
		{"filter", func(p int) []dist.Placement {
			return fcHeavyPlacements(arch,
				dist.P(dist.Grid{PN: p, PH: 1, PW: 1}),
				dist.Placement{Grid: dist.Grid{PN: 1, PC: p, PH: 1, PW: 1}, Split: dist.SplitFilter})
		}},
	}
	t := &Table{
		Title:  "Per-layer placement on the FC-heavy stack: full step ms (real execution)",
		Header: []string{"ranks", "sample (ms)", "channel (ms)", "filter (ms)", "best vs sample"},
		Note: fmt.Sprintf("%d-deep %dx%d stack of %d-channel 1x1 convs, batch %d; channel/filter placements "+
			"shard the weights across the channel group (no weight-gradient allreduce across it) and pay small "+
			"activation collectives instead — the Section III-D trade the placement optimizer prices", depth, size, size, ch, n),
	}
	for _, p := range []int{2, 4} {
		var ms [3]float64
		for i, cfg := range configs {
			ms[i] = MeasureStrategyStep(arch, cfg.pls(p), n, iters) * 1e3
		}
		best := ms[1]
		if ms[2] < best {
			best = ms[2]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.1f", ms[0]),
			fmt.Sprintf("%.1f", ms[1]),
			fmt.Sprintf("%.1f", ms[2]),
			fmt.Sprintf("%.2fx", ms[0]/best),
		})
	}
	return t
}
