package bench

import (
	"testing"

	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Golden decomposition measured by `go run ./cmd/bench -exp obs` on the
// 1-core dev box (2026-08-08): smallcnn 3x8x8, fleet [1 2], avg batch
// 4.0, deadline 500us. The simulator's latency curves are the analytic
// ServeStages prediction scaled by obsComputeScale, the measured-over-
// model compute ratio from that run (320us measured p50 vs 203us model).
const (
	obsComputeP50us = 320  // measured compute-stage p50
	obsE2EP50us     = 1490 // measured end-to-end p50 (sum of stage p50s)
	obsE2EP90us     = 1810 // batch_wait p90 1280 + compute p90 512 + small stages
	obsAvgBatch     = 4.0
	obsComputeScale = 1.6
)

// simObsCurves builds the simulator curves for the obs fleet exactly the
// way cmd/sim does: analytic model, calibrated by the measured ratio.
func simObsCurves(groups []int, maxBatch int) []*sim.Curve {
	arch := models.SmallCNN(8, 3, 4)
	m := CPUMachine()
	curves := make([]*sim.Curve, len(groups))
	for g, ranks := range groups {
		curves[g] = sim.CurveFromModel(m, maxBatch, 3*8*8, 4, ranks,
			func(n int) (float64, float64, int) { return ArchForwardCost(arch, n) })
		curves[g].Scale(obsComputeScale)
	}
	return curves
}

// TestSimCalibrationAgainstObs pins the simulator to the measured fleet:
// the calibrated compute curve must reproduce the measured compute p50,
// and a simulated run at the measured operating point must land its
// end-to-end p50/p99 inside a tolerance band of the measured
// decomposition. Bands are wide on the e2e side because the measurement
// is closed-loop on a contended 1-core box (its batch timer fires late),
// while the simulator's timer is exact — the sim is expected to sit at
// or below the measurement, never far above it.
func TestSimCalibrationAgainstObs(t *testing.T) {
	const maxBatch = 8
	groups := []int{1, 2}
	curves := simObsCurves(groups, maxBatch)

	// Stage-level: calibrated compute at the measured avg batch.
	_, comp, _ := curves[0].Service(int(obsAvgBatch))
	compUs := float64(comp) / 1e3
	if compUs < 0.6*obsComputeP50us || compUs > 1.6*obsComputeP50us {
		t.Fatalf("calibrated compute curve %dus outside [0.6,1.6]x of measured %dus", int64(compUs), obsComputeP50us)
	}

	// End-to-end: open-loop arrivals at the rate that forms the measured
	// avg batch under the 500us deadline (4 riders per 500us = 8000/s).
	pol, err := sched.New(sched.Production)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.NewWorld(sim.Config{
		Seed:          42,
		Groups:        groups,
		Curves:        curves,
		MaxBatch:      maxBatch,
		BatchDeadline: 500_000,
		QueueDepth:    2,
		Policy:        pol,
		Traffic:       sim.Traffic{Rate: obsAvgBatch / 500e-6},
		Duration:      2_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := w.Scorecard()
	if sc.Served == 0 {
		t.Fatal("calibration run served nothing")
	}
	if sc.AvgBatch < obsAvgBatch-1.5 || sc.AvgBatch > obsAvgBatch+1.5 {
		t.Fatalf("avg batch %.1f not at the measured operating point %.1f", sc.AvgBatch, obsAvgBatch)
	}
	if f := float64(sc.P50us); f < 0.25*obsE2EP50us || f > 1.25*obsE2EP50us {
		t.Fatalf("sim e2e p50 %dus outside [0.25,1.25]x band of measured %dus", sc.P50us, obsE2EP50us)
	}
	if f := float64(sc.P99us); f < 0.25*obsE2EP90us || f > 2.0*obsE2EP90us {
		t.Fatalf("sim e2e p99 %dus outside [0.25,2.0]x band of measured p90-derived %dus", sc.P99us, obsE2EP90us)
	}
}
