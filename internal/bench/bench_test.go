package bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dist"

	"repro/internal/models"
	"repro/internal/perfmodel"
)

func TestSpatialGridShapes(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {4, 2}, 16: {4, 4}}
	for ways, want := range cases {
		ph, pw := SpatialGrid(ways)
		if ph != want[0] || pw != want[1] {
			t.Errorf("SpatialGrid(%d) = %dx%d, want %dx%d", ways, ph, pw, want[0], want[1])
		}
		if ph*pw != ways {
			t.Errorf("SpatialGrid(%d) does not multiply out", ways)
		}
	}
}

func TestLayerPointValidity(t *testing.T) {
	m := perfmodel.Lassen()
	// 1 sample cannot use 2 sample-parallel groups.
	if _, _, ok := LayerPoint(m, models.Conv1, 1, 2, 1); ok {
		t.Error("N=1 with 2 sample-parallel GPUs should be invalid")
	}
	// 1 sample with 2-way spatial on 2 GPUs is valid.
	if _, _, ok := LayerPoint(m, models.Conv1, 1, 2, 2); !ok {
		t.Error("N=1 with 2-way spatial should be valid")
	}
	// GPUs not divisible by GPUs/sample is invalid.
	if _, _, ok := LayerPoint(m, models.Conv1, 4, 6, 4); ok {
		t.Error("6 GPUs with 4 GPUs/sample should be invalid")
	}
}

func TestFig3Conv11SpatialScalesWell(t *testing.T) {
	// Section VI-A: mesh conv1_1 at N=1 has "very good scaling" with
	// spatial parallelism — large speedup at 16 GPUs (paper: ~14.8x).
	m := perfmodel.Lassen()
	fp1, bp1, ok := LayerPoint(m, models.MeshConv11, 1, 1, 1)
	if !ok {
		t.Fatal("baseline invalid")
	}
	fp16, bp16, ok := LayerPoint(m, models.MeshConv11, 1, 16, 16)
	if !ok {
		t.Fatal("16-way invalid")
	}
	s := (fp1 + bp1) / (fp16 + bp16)
	if s < 8 || s > 16 {
		t.Errorf("conv1_1 N=1 16-GPU speedup = %.1fx, want ~10-15x", s)
	}
}

func TestFig2Res3bLimitedFPScaling(t *testing.T) {
	// Section VI-A: res3b_branch2a forward "does not show significant
	// performance improvements beyond two GPUs, due to fixed kernel
	// overheads".
	m := perfmodel.Lassen()
	fp2, _, _ := LayerPoint(m, models.Res3bBranch2a, 1, 2, 2)
	fp16, _, _ := LayerPoint(m, models.Res3bBranch2a, 1, 16, 16)
	if fp16 < fp2/4 {
		t.Errorf("res3b FP kept scaling: 2-way %.4fms vs 16-way %.4fms", fp2*1e3, fp16*1e3)
	}
}

func TestFig2SampleParallelismCheapestAtLargeN(t *testing.T) {
	// With N=32 and plenty of samples, pure sample parallelism has the
	// least overhead (Section V-A intuition, confirmed in VI-A).
	m := perfmodel.Lassen()
	for _, layer := range []models.LayerSpec{models.Conv1, models.Res3bBranch2a} {
		fpS, bpS, ok := LayerPoint(m, layer, 32, 16, 1)
		if !ok {
			t.Fatal("sample point invalid")
		}
		fpH, bpH, ok := LayerPoint(m, layer, 32, 16, 16)
		if !ok {
			t.Fatal("spatial point invalid")
		}
		if fpS+bpS > (fpH+bpH)*1.05 {
			t.Errorf("%s: sample parallelism (%.3fms) should not lose to 16-way spatial (%.3fms) at N=32 on 16 GPUs",
				layer.Name, (fpS+bpS)*1e3, (fpH+bpH)*1e3)
		}
	}
}

func TestTableIShape(t *testing.T) {
	m := perfmodel.Lassen()
	base, ok := MeshStrongPoint(m, false, 4, 1)
	if !ok {
		t.Fatal("baseline invalid")
	}
	t2, _ := MeshStrongPoint(m, false, 4, 2)
	t4, _ := MeshStrongPoint(m, false, 4, 4)
	t8, _ := MeshStrongPoint(m, false, 4, 8)
	t16, _ := MeshStrongPoint(m, false, 4, 16)
	s2, s4, s8, s16 := base/t2, base/t4, base/t8, base/t16
	// Paper Table I at N=4: 2.0x, 3.3x, 4.4x, 6.1x.
	if s2 < 1.7 || s2 > 2.15 {
		t.Errorf("2-way speedup %.2fx, want ~2x", s2)
	}
	if s4 < 2.7 || s4 > 3.8 {
		t.Errorf("4-way speedup %.2fx, want ~3.3x", s4)
	}
	if s8 < 3.8 || s8 > 5.6 {
		t.Errorf("8-way speedup %.2fx, want ~4.4-5x", s8)
	}
	if s16 < 4.2 || s16 > 7.0 {
		t.Errorf("16-way speedup %.2fx, want ~5-6x", s16)
	}
	if !(s2 < s4 && s4 < s8 && s8 < s16) {
		t.Errorf("speedups not monotone: %.2f %.2f %.2f %.2f", s2, s4, s8, s16)
	}
}

func TestTableIIShape(t *testing.T) {
	m := perfmodel.Lassen()
	// Sample parallelism infeasible for the 2K model.
	if _, ok := MeshStrongPoint(m, true, 2, 1); ok {
		t.Error("2K mesh at 1 GPU/sample should be infeasible")
	}
	base, ok := MeshStrongPoint(m, true, 2, 2)
	if !ok {
		t.Fatal("2-way baseline invalid")
	}
	t4, _ := MeshStrongPoint(m, true, 2, 4)
	t8, _ := MeshStrongPoint(m, true, 2, 8)
	s4, s8 := base/t4, base/t8
	// Paper: ~2.1x and ~2.9x; our model over-scales at 8-way (see
	// EXPERIMENTS.md), so bounds are loose but monotone and sublinear.
	if s4 < 1.7 || s4 > 2.3 {
		t.Errorf("2K 4-way speedup %.2fx, want ~2x", s4)
	}
	if s8 < s4 || s8 > 4.2 {
		t.Errorf("2K 8-way speedup %.2fx, want monotone and sublinear", s8)
	}
}

func TestTableIIIShape(t *testing.T) {
	m := perfmodel.Lassen()
	for _, n := range []int{128, 1024, 8192} {
		base, ok := ResNetPoint(m, n, 1)
		if !ok {
			t.Fatalf("N=%d baseline invalid", n)
		}
		t2, ok2 := ResNetPoint(m, n, 2)
		t4, ok4 := ResNetPoint(m, n, 4)
		if !ok2 || !ok4 {
			t.Fatalf("N=%d hybrid points invalid", n)
		}
		s2, s4 := base/t2, base/t4
		if s2 < 1.25 || s2 > 1.6 {
			t.Errorf("N=%d: 2-way hybrid %.2fx, want ~1.4x", n, s2)
		}
		if s4 < 1.35 || s4 > 2.0 {
			t.Errorf("N=%d: 4-way hybrid %.2fx, want ~1.6-1.8x", n, s4)
		}
	}
}

func TestFig4WeakScalingFlat(t *testing.T) {
	// Figure 4: mini-batch time stays near-constant as GPUs grow with the
	// batch.
	m := perfmodel.Lassen()
	arch := models.Mesh1K()
	for _, s := range []int{1, 2, 4} {
		var first float64
		for g := 4 * s; g <= 2048; g *= 4 {
			tm, ok := meshTime(m, arch, g/s, s)
			if !ok {
				continue
			}
			if first == 0 {
				first = tm
			}
			if tm > first*1.25 {
				t.Errorf("%d GPU/sample at %d GPUs: time %.4f degraded >25%% from %.4f", s, g, tm, first)
			}
		}
	}
}

func TestFig4SixteenWayDegradesSlightly(t *testing.T) {
	// Section VI-B1: weak scaling at 8-16 GPUs/sample shows "a slight trend
	// of increasing mini-batch time at large scale".
	m := perfmodel.Lassen()
	arch := models.Mesh1K()
	small, _ := meshTime(m, arch, 1, 16)   // 16 GPUs
	large, _ := meshTime(m, arch, 128, 16) // 2048 GPUs
	if large <= small {
		t.Errorf("16-way weak scaling should degrade slightly: %.4f -> %.4f", small, large)
	}
	if large > small*1.6 {
		t.Errorf("16-way weak scaling degraded too much: %.4f -> %.4f", small, large)
	}
}

func TestTablesRenderCompletely(t *testing.T) {
	m := perfmodel.Lassen()
	var sb strings.Builder
	TableI(m).Write(&sb)
	TableII(m).Write(&sb)
	TableIII(m).Write(&sb)
	for _, tbl := range Fig2(m) {
		tbl.Write(&sb)
	}
	for _, tbl := range Fig3(m) {
		tbl.Write(&sb)
	}
	for _, tbl := range Fig4(m) {
		tbl.Write(&sb)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "conv1:", "res3b_branch2a:", "conv1_1:", "conv6_1:", "Figure 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	if strings.Count(out, "n/a") == 0 {
		t.Error("expected some n/a cells for infeasible configurations")
	}
}

func TestTableCellLookup(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if tbl.Cell(0, "b") != "2" {
		t.Fatal("Cell lookup broken")
	}
	if tbl.Cell(0, "zzz") != "" {
		t.Fatal("missing column should return empty")
	}
}

func TestMeasureConvRealRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real measurement in -short mode")
	}
	rt := MeasureConvReal(dictGrid(1, 1, 1), 2, 4, 32, 32, 8, geom3x3(), 2)
	if rt.FP <= 0 || rt.BP <= 0 {
		t.Fatalf("non-positive measured times: %+v", rt)
	}
	// Distributed run must produce sane times too.
	rt2 := MeasureConvReal(dictGrid(1, 2, 1), 2, 4, 32, 32, 8, geom3x3(), 2)
	if rt2.FP <= 0 || rt2.BP <= 0 {
		t.Fatalf("non-positive distributed times: %+v", rt2)
	}
}

func TestModelCheckTable(t *testing.T) {
	if testing.Short() {
		t.Skip("model check in -short mode")
	}
	tbl := ModelCheck()
	if len(tbl.Rows) != 5 {
		t.Fatalf("model check has %d rows, want 5", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "1.00x" {
		t.Fatalf("baseline measured speedup = %s, want 1.00x", tbl.Rows[0][2])
	}
}

// small helpers keeping test call sites tidy.
func dictGrid(pn, ph, pw int) dist.Grid { return dist.Grid{PN: pn, PH: ph, PW: pw} }

func geom3x3() dist.ConvGeom { return dist.ConvGeom{K: 3, S: 1, Pad: 1} }

func TestAblationOverlapTable(t *testing.T) {
	m := perfmodel.Lassen()
	tbl := AblationOverlap(m)
	if len(tbl.Rows) != 3 {
		t.Fatalf("ablation table has %d rows", len(tbl.Rows))
	}
	// Every overlap removed must cost time: columns are monotone
	// non-decreasing from "all overlaps" to "none".
	for _, row := range tbl.Rows {
		var vals []float64
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmt.Sscanf(cell, "%f", &v); err != nil {
				t.Fatalf("unparsable cell %q", cell)
			}
			vals = append(vals, v)
		}
		if vals[0] > vals[1]+1e-9 || vals[0] > vals[2]+1e-9 || vals[3] < vals[1]-1e-9 || vals[3] < vals[2]-1e-9 {
			t.Errorf("%s: overlap ablation not monotone: %v", row[0], vals)
		}
	}
}

func TestMemoryTableShowsOOM(t *testing.T) {
	m := perfmodel.Lassen()
	tbl := MemoryTable(m)
	if !strings.Contains(tbl.Rows[1][1], "OOM") {
		t.Errorf("2K model at 1 GPU/sample should be OOM, got %q", tbl.Rows[1][1])
	}
	if strings.Contains(tbl.Rows[1][2], "OOM") {
		t.Errorf("2K model at 2 GPUs/sample should fit, got %q", tbl.Rows[1][2])
	}
	if strings.Contains(tbl.Rows[0][1], "OOM") {
		t.Errorf("1K model at 1 GPU/sample should fit, got %q", tbl.Rows[0][1])
	}
}

func TestConv3DLayerTableBalancedWins(t *testing.T) {
	m := perfmodel.Lassen()
	tbl := Conv3DLayerTable(m)
	for _, row := range tbl.Rows {
		var slab, box float64
		fmt.Sscanf(row[1], "%f", &slab)
		fmt.Sscanf(row[2], "%f", &box)
		// At low ways the two decompositions tie (within kernel-shape
		// noise); at high ways the balanced box must win clearly.
		if box > slab*1.02 {
			t.Errorf("ways=%s: balanced 3-D (%v ms) loses to slab (%v ms)", row[0], box, slab)
		}
		if row[0] == "64" && box >= slab {
			t.Errorf("ways=64: balanced 3-D (%v ms) should beat the slab (%v ms)", box, slab)
		}
	}
}
