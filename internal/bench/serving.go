package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/models"
	"repro/internal/serve"
)

// ServingRecord is one serving-benchmark measurement (cmd/bench -exp serve;
// CI archives the set as BENCH_serving.json so sharded-front-end throughput
// and the zero-alloc ingest claim stay comparable across commits).
type ServingRecord struct {
	Config           string  `json:"config"`
	FrontEnds        int     `json:"front_ends"`
	Replicas         int     `json:"replicas"`
	Ingest           string  `json:"ingest"` // "inproc" or "binary"
	Clients          int     `json:"clients"`
	Requests         uint64  `json:"requests"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	P50us            int64   `json:"p50_us"`
	P99us            int64   `json:"p99_us"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// ServingThroughput measures the live serving stack end to end on this
// machine: closed-loop clients against a real fleet, over both ingest
// paths (in-process Predict and binary frames over loopback TCP), at one
// and two front-ends. Throughput and tail latency come from the server's
// own flight recorder; allocations per request are process-wide Mallocs
// over the measurement window, so they charge the whole pipeline — client
// encode, ingest, batcher, router, replica forward, response.
func ServingThroughput() *Table {
	t, _ := ServingThroughputRecords()
	return t
}

// ServingThroughputRecords is ServingThroughput returning, alongside the
// rendered table, the raw measurements for JSON archiving.
func ServingThroughputRecords() (*Table, []ServingRecord) {
	t := &Table{
		Title:  "Serving throughput (this machine)",
		Header: []string{"config", "ingest", "clients", "served", "req/s", "p50us", "p99us", "allocs/req"},
		Note:   "closed-loop over 300ms windows; allocs/req is process-wide Mallocs / served",
	}
	var recs []ServingRecord
	for _, cell := range []struct {
		frontEnds int
		groups    []int
		ingest    string
		clients   int
	}{
		{1, []int{1, 1}, "inproc", 8},
		{2, []int{1, 1}, "inproc", 8},
		{1, []int{1, 1}, "binary", 8},
		{2, []int{1, 1}, "binary", 8},
	} {
		rec := servingCell(cell.frontEnds, cell.groups, cell.ingest, cell.clients)
		t.Rows = append(t.Rows, []string{
			rec.Config, rec.Ingest, fmt.Sprint(rec.Clients), fmt.Sprint(rec.Requests),
			fmt.Sprintf("%.0f", rec.ThroughputRPS),
			fmt.Sprint(rec.P50us), fmt.Sprint(rec.P99us),
			fmt.Sprintf("%.1f", rec.AllocsPerRequest),
		})
		recs = append(recs, rec)
	}
	return t, recs
}

func servingCell(frontEnds int, groups []int, ingest string, clients int) ServingRecord {
	model, err := models.SmallCNNForServing(8, 3, 4, 16)
	if err != nil {
		panic(err)
	}
	// Greedy batching: flush as soon as the lanes empty. A timed deadline
	// would make the benchmark measure OS timer slack (a 100µs timer fires
	// ~1ms late on a loaded single-core box), not the serving pipeline.
	s, err := serve.New(model, serve.Config{
		FrontEnds:     frontEnds,
		Groups:        groups,
		MaxBatch:      8,
		BatchDeadline: serve.Greedy,
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()

	var addr string
	if ingest == "binary" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		addr = ln.Addr().String()
		go func() { _ = s.ServeBinary(ln) }()
	}

	// predictor builds one client's closed-loop step over the chosen path.
	predictor := func(c int) func(in, out []float32) error {
		if ingest == "binary" {
			bc, err := serve.DialBinary(addr, s.InputLen(), s.OutputLen())
			if err != nil {
				panic(err)
			}
			return bc.Predict
		}
		return s.Predict
	}

	const warm = 100 * time.Millisecond
	const window = 300 * time.Millisecond
	var stop atomic.Bool
	var phase atomic.Int32 // 0 = warm-up, 1 = measuring
	var served atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			step := predictor(c)
			in := make([]float32, s.InputLen())
			for i := range in {
				in[i] = float32((i+c)%17) * 0.25
			}
			out := make([]float32, s.OutputLen())
			for !stop.Load() {
				err := step(in, out)
				switch err {
				case nil:
					if phase.Load() == 1 {
						served.Add(1)
					}
				case serve.ErrOverloaded:
					time.Sleep(50 * time.Microsecond)
				default:
					return
				}
			}
		}(c)
	}

	time.Sleep(warm)
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	phase.Store(1)
	time.Sleep(window)
	phase.Store(0)
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	stop.Store(true)
	wg.Wait()

	st := s.Stats()
	n := served.Load()
	rec := ServingRecord{
		Config:    fmt.Sprintf("%dfe-%dx1", frontEnds, len(groups)),
		FrontEnds: frontEnds,
		Replicas:  len(groups),
		Ingest:    ingest,
		Clients:   clients,
		Requests:  n,
		P50us:     st.P50.Microseconds(),
		P99us:     st.P99.Microseconds(),
	}
	if n > 0 {
		rec.ThroughputRPS = float64(n) / elapsed.Seconds()
		rec.AllocsPerRequest = float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	return rec
}

// WriteServingJSON writes serving benchmark records as a JSON array.
func WriteServingJSON(path string, recs []ServingRecord) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
