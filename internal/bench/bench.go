// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI): the layer microbenchmarks of Figures 2-3, the
// weak-scaling curves of Figure 4, the strong-scaling Tables I-III, and a
// model-validation experiment comparing real (in-process) distributed
// execution against the performance model's predictions.
//
// Large-scale numbers come from the performance model with the Lassen-like
// machine profile (see DESIGN.md for the substitution rationale); shapes —
// who wins, by what factor, where returns diminish — are the reproduction
// target, not LLNL wall-clock.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/perfmodel"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// Cell looks up a cell by row index and column name (test convenience).
func (t *Table) Cell(row int, col string) string {
	for i, h := range t.Header {
		if h == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

// SpatialGrid maps "s GPUs/sample" to the near-square PH x PW decomposition
// used throughout the evaluation: 2 -> 2x1, 4 -> 2x2, 8 -> 4x2, 16 -> 4x4.
func SpatialGrid(ways int) (ph, pw int) {
	switch ways {
	case 1:
		return 1, 1
	case 2:
		return 2, 1
	case 4:
		return 2, 2
	case 8:
		return 4, 2
	case 16:
		return 4, 4
	default:
		ph = 1
		for ph*ph < ways {
			ph *= 2
		}
		return ph, ways / ph
	}
}

// maxGPUs caps configurations at Lassen's scale (512 nodes x 4 GPUs used in
// the paper's largest runs).
const maxGPUs = 2048

// ways are the GPUs/sample curves of the evaluation.
var ways = []int{1, 2, 4, 8, 16}

// FigureLayer builds one microbenchmark table (a panel of Figure 2 or 3):
// modeled forward and backpropagation time of a single layer across GPU
// counts and parallelization schemes, halo exchanges overlapped, the
// gradient allreduce excluded (Section VI-A).
func FigureLayer(m perfmodel.Machine, layer models.LayerSpec, batches []int, gpuCounts []int) *Table {
	t := &Table{
		Title: fmt.Sprintf("%s: C=%d H=%d W=%d F=%d K=%d P=%d S=%d",
			layer.Name, layer.C, layer.H, layer.W, layer.F, layer.Geom.K, layer.Geom.Pad, layer.Geom.S),
		Header: []string{"N", "#GPUs"},
		Note:   "cells: FP ms / BP ms (BP = backward-data + backward-filter); allreduce excluded",
	}
	for _, s := range ways {
		t.Header = append(t.Header, fmt.Sprintf("%d GPU/sample", s))
	}
	for _, n := range batches {
		for _, g := range gpuCounts {
			row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", g)}
			for _, s := range ways {
				row = append(row, layerCell(m, layer, n, g, s))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// LayerPoint returns the modeled FP and BP times (seconds) of one
// microbenchmark point, or ok=false when the configuration is invalid.
func LayerPoint(m perfmodel.Machine, layer models.LayerSpec, n, gpus, gpusPerSample int) (fp, bp float64, ok bool) {
	if gpus%gpusPerSample != 0 {
		return 0, 0, false
	}
	pn := gpus / gpusPerSample
	if pn < 1 || pn > n {
		return 0, 0, false
	}
	ph, pw := SpatialGrid(gpusPerSample)
	outH, outW := layer.Geom.OutSize(layer.H), layer.Geom.OutSize(layer.W)
	if outH < ph || outW < pw {
		return 0, 0, false
	}
	grid := dist.Grid{PN: pn, PH: ph, PW: pw}
	spec := perfmodel.ConvSpec{N: n, C: layer.C, H: layer.H, W: layer.W, F: layer.F, Geom: layer.Geom}
	lc := m.ConvLayerCost(spec, grid, true)
	return lc.FP, lc.BPx + lc.BPw, true
}

func layerCell(m perfmodel.Machine, layer models.LayerSpec, n, gpus, s int) string {
	fp, bp, ok := LayerPoint(m, layer, n, gpus, s)
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.3f/%.3f", fp*1e3, bp*1e3)
}

// Fig2 regenerates Figure 2: ResNet-50 conv1 and res3b_branch2a for
// N in {1, 4, 32} on 1-16 GPUs.
func Fig2(m perfmodel.Machine) []*Table {
	g := []int{1, 2, 4, 8, 16}
	return []*Table{
		FigureLayer(m, models.Conv1, []int{1, 4, 32}, g),
		FigureLayer(m, models.Res3bBranch2a, []int{1, 4, 32}, g),
	}
}

// Fig3 regenerates Figure 3: mesh-2K conv1_1 and conv6_1 for N in {1,2,4}.
func Fig3(m perfmodel.Machine) []*Table {
	g := []int{1, 2, 4, 8, 16}
	return []*Table{
		FigureLayer(m, models.MeshConv11, []int{1, 2, 4}, g),
		FigureLayer(m, models.MeshConv61, []int{1, 2, 4}, g),
	}
}

// meshTime models one mesh-model configuration: one sample per GPU group
// (the models fit at most one sample per GPU), s GPUs/sample, mini-batch n.
func meshTime(m perfmodel.Machine, arch *nn.Arch, n, s int) (float64, bool) {
	ph, pw := SpatialGrid(s)
	grid := dist.Grid{PN: n, PH: ph, PW: pw}
	if grid.Size() > maxGPUs {
		return 0, false
	}
	if !perfmodel.Feasible(m, arch, grid, n) {
		return 0, false
	}
	nc, err := perfmodel.CNNCost(m, arch, grid, n, perfmodel.DefaultOptions())
	if err != nil {
		return 0, false
	}
	return nc.MiniBatchTime, true
}

// TableI regenerates Table I: 1K mesh strong scaling at fixed mini-batch
// sizes, speedups over pure sample parallelism (1 GPU/sample).
func TableI(m perfmodel.Machine) *Table {
	return meshStrongScaling(m, models.Mesh1K(),
		"Table I: 1K mesh strong scaling (time and speedup vs 1 GPU/sample)",
		[]int{4, 8, 16, 32, 64, 128, 256, 512, 1024}, ways, 1)
}

// TableII regenerates Table II: 2K mesh strong scaling; sample parallelism
// is infeasible (memory), so the baseline is 2 GPUs/sample.
func TableII(m perfmodel.Machine) *Table {
	return meshStrongScaling(m, models.Mesh2K(),
		"Table II: 2K mesh strong scaling (time and speedup vs 2 GPUs/sample)",
		[]int{2, 4, 8, 16, 32, 64, 128, 256, 512}, []int{2, 4, 8, 16}, 2)
}

func meshStrongScaling(m perfmodel.Machine, arch *nn.Arch, title string, batches, scales []int, baseWays int) *Table {
	t := &Table{Title: title, Header: []string{"N"}}
	for _, s := range scales {
		t.Header = append(t.Header, fmt.Sprintf("%d GPU/sample", s))
	}
	for _, n := range batches {
		row := []string{fmt.Sprintf("%d", n)}
		base, baseOK := meshTime(m, arch, n, baseWays)
		for _, s := range scales {
			tm, ok := meshTime(m, arch, n, s)
			switch {
			case !ok:
				row = append(row, "n/a")
			case s == baseWays:
				row = append(row, fmt.Sprintf("%.4fs", tm))
			case baseOK:
				row = append(row, fmt.Sprintf("%.4fs (%.1fx)", tm, base/tm))
			default:
				row = append(row, fmt.Sprintf("%.4fs", tm))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MeshStrongPoint exposes one strong-scaling measurement for tests.
func MeshStrongPoint(m perfmodel.Machine, model2K bool, n, s int) (float64, bool) {
	arch := models.Mesh1K()
	if model2K {
		arch = models.Mesh2K()
	}
	return meshTime(m, arch, n, s)
}

// Fig4 regenerates Figure 4: weak scaling of the 1K and 2K mesh models up
// to 2048 GPUs — mini-batch time as GPUs (and thus mini-batch size) grow,
// one curve per GPUs/sample.
func Fig4(m perfmodel.Machine) []*Table {
	out := []*Table{}
	for _, cfg := range []struct {
		arch   *nn.Arch
		title  string
		scales []int
	}{
		{models.Mesh1K(), "Figure 4 (left): 1024x1024 mesh model weak scaling", ways},
		{models.Mesh2K(), "Figure 4 (right): 2048x2048 mesh model weak scaling", []int{2, 4, 8, 16}},
	} {
		t := &Table{Title: cfg.title, Header: []string{"#GPUs"},
			Note: "cells: mini-batch time (s); N grows with #GPUs (weak scaling)"}
		for _, s := range cfg.scales {
			t.Header = append(t.Header, fmt.Sprintf("%d GPU/sample", s))
		}
		for g := 4; g <= maxGPUs; g *= 2 {
			row := []string{fmt.Sprintf("%d", g)}
			for _, s := range cfg.scales {
				if g%s != 0 {
					row = append(row, "n/a")
					continue
				}
				n := g / s
				if n < 1 {
					row = append(row, "n/a")
					continue
				}
				tm, ok := meshTime(m, cfg.arch, n, s)
				if !ok {
					row = append(row, "n/a")
					continue
				}
				row = append(row, fmt.Sprintf("%.4f", tm))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}

// ResNetPoint models one Table III configuration: mini-batch n with 32
// samples per GPU group and s GPUs per group.
func ResNetPoint(m perfmodel.Machine, n, s int) (float64, bool) {
	pn := n / 32
	if pn < 1 || n%32 != 0 {
		return 0, false
	}
	ph, pw := SpatialGrid(s)
	grid := dist.Grid{PN: pn, PH: ph, PW: pw}
	if grid.Size() > maxGPUs {
		return 0, false
	}
	arch := models.ResNet50(224, 1000)
	nc, err := perfmodel.CNNCost(m, arch, grid, n, perfmodel.DefaultOptions())
	if err != nil {
		return 0, false
	}
	return nc.MiniBatchTime, true
}

// TableIII regenerates Table III: ResNet-50 strong scaling, 32 samples/GPU
// sample-parallel baseline vs hybrid 2-way and 4-way spatial decomposition.
func TableIII(m perfmodel.Machine) *Table {
	t := &Table{
		Title:  "Table III: ResNet-50 strong scaling (speedup vs sample parallelism)",
		Header: []string{"N", "Sample (32/GPU)", "Hybrid (32/2 GPUs)", "Hybrid (32/4 GPUs)"},
	}
	for n := 128; n <= 32768; n *= 2 {
		base, okB := ResNetPoint(m, n, 1)
		row := []string{fmt.Sprintf("%d", n)}
		if okB {
			row = append(row, fmt.Sprintf("%.4fs", base))
		} else {
			row = append(row, "n/a")
		}
		for _, s := range []int{2, 4} {
			tm, ok := ResNetPoint(m, n, s)
			if !ok {
				row = append(row, "n/a")
			} else if okB {
				row = append(row, fmt.Sprintf("%.4fs (%.1fx)", tm, base/tm))
			} else {
				row = append(row, fmt.Sprintf("%.4fs", tm))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RunAll writes every experiment to w in paper order.
func RunAll(m perfmodel.Machine, w io.Writer) {
	for _, t := range Fig2(m) {
		t.Write(w)
	}
	for _, t := range Fig3(m) {
		t.Write(w)
	}
	for _, t := range Fig4(m) {
		t.Write(w)
	}
	TableI(m).Write(w)
	TableII(m).Write(w)
	TableIII(m).Write(w)
	SurfaceToVolume3D().Write(w)
	Conv3DLayerTable(m).Write(w)
	AblationOverlap(m).Write(w)
	MemoryTable(m).Write(w)
	ModelCheck().Write(w)
	KernelThroughput().Write(w)
}

// SurfaceToVolume3D tabulates the conclusion's 3-D claim: halo words per
// local element for the best balanced 2-D vs 3-D decomposition at equal
// linear resolution, across processor counts. Lower is better; the 3-D
// column wins strictly once the processor count has a balanced cube
// factorization.
func SurfaceToVolume3D() *Table {
	t := &Table{
		Title:  "3-D extension: surface-to-volume — halo words per local element (K=3, C=16, L=512)",
		Header: []string{"ways", "2-D decomposition", "3-D decomposition", "3-D advantage"},
		Note:   "the paper's conclusion: 3-D spatial parallelism is more advantageous due to the more favorable surface-to-volume ratio",
	}
	for _, ways := range []int{8, 64, 512} {
		r2, r3 := perfmodel.SurfaceToVolume(16, 3, ways)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ways),
			fmt.Sprintf("%.4f", r2),
			fmt.Sprintf("%.4f", r3),
			fmt.Sprintf("%.2fx", r2/r3),
		})
	}
	return t
}

// AblationOverlap tabulates the modeled impact of the Section IV-A
// communication/computation overlaps on whole-model mini-batch time.
func AblationOverlap(m perfmodel.Machine) *Table {
	t := &Table{
		Title:  "Ablation: halo/allreduce overlap (modeled mini-batch time, s)",
		Header: []string{"configuration", "all overlaps", "no halo overlap", "no allreduce overlap", "none"},
		Note:   "Section IV-A interior/boundary halo overlap and Section V-B greedy allreduce overlap",
	}
	cases := []struct {
		label string
		arch  *nn.Arch
		grid  dist.Grid
		n     int
	}{
		{"mesh1k N=4, 16-way", models.Mesh1K(), dist.Grid{PN: 4, PH: 4, PW: 4}, 4},
		{"mesh2k N=2, 8-way", models.Mesh2K(), dist.Grid{PN: 2, PH: 4, PW: 2}, 2},
		{"resnet50 N=128, 4-way", models.ResNet50(224, 1000), dist.Grid{PN: 4, PH: 2, PW: 2}, 128},
	}
	for _, c := range cases {
		row := []string{c.label}
		for _, opt := range []perfmodel.Options{
			{OverlapHalo: true, OverlapAllreduce: true, CountElementwise: true},
			{OverlapHalo: false, OverlapAllreduce: true, CountElementwise: true},
			{OverlapHalo: true, OverlapAllreduce: false, CountElementwise: true},
			{OverlapHalo: false, OverlapAllreduce: false, CountElementwise: true},
		} {
			nc, err := perfmodel.CNNCost(m, c.arch, c.grid, c.n, opt)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.4f", nc.MiniBatchTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MemoryTable tabulates modeled per-GPU training memory across GPUs/sample
// for the mesh models — the feasibility argument of Section VI-B1 (the 2K
// model exceeds a 16 GB V100 even at one sample per GPU).
func MemoryTable(m perfmodel.Machine) *Table {
	t := &Table{
		Title:  "Per-GPU training memory (GB) vs GPUs/sample (mini-batch = sample groups)",
		Header: []string{"model", "1", "2", "4", "8", "16"},
		Note:   fmt.Sprintf("GPU capacity %.0f GB; 'OOM' marks infeasible decompositions", m.GPUMemBytes/1e9),
	}
	for _, c := range []struct {
		label string
		arch  *nn.Arch
	}{{"mesh 1K", models.Mesh1K()}, {"mesh 2K", models.Mesh2K()}} {
		row := []string{c.label}
		for _, s := range ways {
			ph, pw := SpatialGrid(s)
			g := dist.Grid{PN: 2, PH: ph, PW: pw}
			mem := perfmodel.MemoryBytes(c.arch, g, 2)
			cell := fmt.Sprintf("%.1f", mem/1e9)
			if mem > m.GPUMemBytes {
				cell += " (OOM)"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Conv3DLayerTable compares slab (depth-only) and balanced 3-D
// decompositions of a volumetric convolution in the performance model — the
// layer-level version of the surface-to-volume argument.
func Conv3DLayerTable(m perfmodel.Machine) *Table {
	s := perfmodel.Conv3DSpec{N: 1, C: 16, D: 256, H: 256, W: 256, F: 32,
		Geom: dist.ConvGeom{K: 3, S: 1, Pad: 1}}
	t := &Table{
		Title:  "3-D layer decomposition: modeled forward time (ms), C=16 F=32 256^3 volume",
		Header: []string{"ways", "slab (d only)", "balanced 3-D", "speedup vs 1"},
		Note:   "halo overlapped; balanced boxes keep faces small as ways grow",
	}
	base := m.Conv3DLayerTime(s, dist.Grid3{PN: 1, PD: 1, PH: 1, PW: 1})
	for _, cfg := range []struct {
		ways int
		slab dist.Grid3
		box  dist.Grid3
	}{
		{8, dist.Grid3{PN: 1, PD: 8, PH: 1, PW: 1}, dist.Grid3{PN: 1, PD: 2, PH: 2, PW: 2}},
		{64, dist.Grid3{PN: 1, PD: 64, PH: 1, PW: 1}, dist.Grid3{PN: 1, PD: 4, PH: 4, PW: 4}},
	} {
		slab := m.Conv3DLayerTime(s, cfg.slab)
		box := m.Conv3DLayerTime(s, cfg.box)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cfg.ways),
			fmt.Sprintf("%.3f", slab*1e3),
			fmt.Sprintf("%.3f", box*1e3),
			fmt.Sprintf("%.1fx", base/box),
		})
	}
	return t
}
