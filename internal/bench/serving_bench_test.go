package bench

import (
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func benchServing(b *testing.B, fusion bool) {
	nn.SetInferFusion(fusion)
	inf, err := models.ResNet50TinyForServing(32, 8, 16)
	nn.SetInferFusion(true)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(16, 3, 32, 32)
	x.FillPattern(0.7)
	inf.Forward(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf.Forward(x)
	}
}

func BenchmarkServingForwardLegacy(b *testing.B) { benchServing(b, false) }
func BenchmarkServingForwardFused(b *testing.B)  { benchServing(b, true) }
