package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// KernelThroughput measures the real compute-kernel substrate on this
// machine: SGEMM and convolution-forward GFLOP/s plus steady-state
// allocations per call. These are the C(n,c,h,w,f) inputs every modeled
// number ultimately stands on — the paper's premise is that fine-grained
// parallelism pays off only when the local kernels are fast enough that
// communication, not arithmetic, bounds the step.
func KernelThroughput() *Table {
	t := &Table{
		Title:  "Compute-kernel throughput (this machine)",
		Header: []string{"kernel", "shape", "GFLOP/s", "allocs/op"},
		Note:   "packed register-blocked GEMM microkernel; workspace-arena kernels",
	}
	gemmRow := func(name string, m, n, k int) {
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, m*n)
		for i := range a {
			a[i] = float32(i%13) * 0.25
		}
		for i := range b {
			b[i] = float32(i%7) * 0.5
		}
		run := func() { kernels.GemmNN(m, n, k, 1, a, b, 0, c) }
		gf := gflops(2*float64(m)*float64(n)*float64(k), run)
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%dx%dx%d", m, n, k),
			fmt.Sprintf("%.2f", gf), fmt.Sprintf("%.0f", allocsPerOp(run))})
	}
	gemmRow("GemmNN", 256, 256, 256)
	gemmRow("GemmNN", 512, 512, 512)

	x := tensor.New(4, 16, 64, 64)
	x.FillPattern(0.4)
	w := tensor.New(32, 16, 3, 3)
	w.FillPattern(0.6)
	y := tensor.New(4, 32, 64, 64)
	flops := 2.0 * 4 * 32 * 16 * 3 * 3 * 64 * 64
	for _, cfg := range []struct {
		name string
		algo kernels.ConvAlgo
	}{{"ConvForward/direct", kernels.ConvDirect}, {"ConvForward/im2col", kernels.ConvIm2col}} {
		run := func() { kernels.ConvForward(x, w, nil, y, 1, 1, cfg.algo) }
		gf := gflops(flops, run)
		t.Rows = append(t.Rows, []string{cfg.name, "4x16x64x64 -> 32f 3x3",
			fmt.Sprintf("%.2f", gf), fmt.Sprintf("%.0f", allocsPerOp(run))})
	}
	return t
}

// gflops times fn (after one warm-up) and converts to GFLOP/s.
func gflops(flopsPerOp float64, fn func()) float64 {
	fn()
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 100*time.Millisecond || iters >= 1<<20 {
			return flopsPerOp * float64(iters) / el.Seconds() / 1e9
		}
		iters *= 2
	}
}

// allocsPerOp counts steady-state heap allocations of fn.
func allocsPerOp(fn func()) float64 {
	fn()
	var before, after runtime.MemStats
	const runs = 10
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}
