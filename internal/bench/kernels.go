package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/kernels"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BenchRecord is one kernel-benchmark measurement in machine-readable form
// (cmd/bench -json; CI archives the file as BENCH_kernels.json so runs are
// comparable across commits).
type BenchRecord struct {
	Name        string  `json:"name"`
	Shape       string  `json:"shape"`
	Kernel      string  `json:"kernel"` // active microkernel geometry
	GFLOPS      float64 `json:"gflops,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// KernelThroughput measures the real compute-kernel substrate on this
// machine: SGEMM and convolution-forward GFLOP/s plus steady-state
// allocations per call. These are the C(n,c,h,w,f) inputs every modeled
// number ultimately stands on — the paper's premise is that fine-grained
// parallelism pays off only when the local kernels are fast enough that
// communication, not arithmetic, bounds the step.
func KernelThroughput() *Table {
	t, _ := KernelThroughputRecords()
	return t
}

// KernelThroughputRecords is KernelThroughput returning, alongside the
// rendered table, the raw measurements for JSON archiving.
func KernelThroughputRecords() (*Table, []BenchRecord) {
	t := &Table{
		Title:  "Compute-kernel throughput (this machine)",
		Header: []string{"kernel", "shape", "GFLOP/s", "ns/op", "allocs/op"},
		Note: fmt.Sprintf("packed register-blocked GEMM, microkernel %s; prepacked = serving weights packed at load",
			kernels.GemmKernelName()),
	}
	var recs []BenchRecord
	row := func(name, shape string, flopsPerOp float64, fn func()) {
		ns := nsPerOp(fn)
		gf := 0.0
		if flopsPerOp > 0 {
			gf = flopsPerOp / ns
		}
		al := allocsPerOp(fn)
		t.Rows = append(t.Rows, []string{name, shape,
			fmt.Sprintf("%.2f", gf), fmt.Sprintf("%.0f", ns), fmt.Sprintf("%.0f", al)})
		recs = append(recs, BenchRecord{Name: name, Shape: shape, Kernel: kernels.GemmKernelName(),
			GFLOPS: gf, NsPerOp: ns, AllocsPerOp: al})
	}

	for _, d := range []int{256, 512} {
		m, n, k := d, d, d
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, m*n)
		for i := range a {
			a[i] = float32(i%13) * 0.25
		}
		for i := range b {
			b[i] = float32(i%7) * 0.5
		}
		shape := fmt.Sprintf("%dx%dx%d", m, n, k)
		flops := 2 * float64(m) * float64(n) * float64(k)
		row("GemmNN", shape, flops, func() { kernels.GemmNN(m, n, k, 1, a, b, 0, c) })
		pb := kernels.PackB(k, n, b, false)
		row("GemmNNPrepacked", shape, flops, func() { kernels.GemmNNPrepacked(m, n, k, 1, a, pb, 0, c) })
	}

	x := tensor.New(4, 16, 64, 64)
	x.FillPattern(0.4)
	w := tensor.New(32, 16, 3, 3)
	w.FillPattern(0.6)
	y := tensor.New(4, 32, 64, 64)
	convShape := "4x16x64x64 -> 32f 3x3"
	flops := 2.0 * 4 * 32 * 16 * 3 * 3 * 64 * 64
	row("ConvForward/direct", convShape, flops, func() { kernels.ConvForward(x, w, nil, y, 1, 1, kernels.ConvDirect) })
	row("ConvForward/im2col", convShape, flops, func() { kernels.ConvForward(x, w, nil, y, 1, 1, kernels.ConvIm2col) })

	// The serving conv path: one micro-batch lowered onto one GEMM, legacy
	// pack-on-the-fly vs prepacked weights vs prepacked with the fused
	// BN+ReLU store epilogue (the last also folds away two elementwise
	// passes, so its GFLOP/s column credits only the conv arithmetic).
	xb := tensor.New(16, 32, 16, 16)
	xb.FillPattern(0.3)
	wb := tensor.New(64, 32, 3, 3)
	wb.FillPattern(0.5)
	yb := tensor.New(16, 64, 16, 16)
	bShape := "16x32x16x16 -> 64f 3x3"
	bFlops := 2.0 * 16 * 64 * 32 * 3 * 3 * 16 * 16
	row("ConvForwardBatched", bShape, bFlops, func() { kernels.ConvForwardBatched(xb, wb, nil, yb, 1, 1) })
	wp := kernels.PackConvWeights(wb)
	row("ConvForwardBatchedPrepacked", bShape, bFlops, func() {
		kernels.ConvForwardBatchedPrepacked(xb, wp, 3, nil, yb, 1, 1, nil, 0)
	})
	f := wb.Shape()[0]
	ones := make([]float32, f)
	for i := range ones {
		ones[i] = 1
	}
	epi := kernels.NewBNEpilogue(nil, ones, make([]float32, f), make([]float32, f), ones, 1e-5, true)
	row("ConvForwardBatchedPrepacked/fusedBNReLU", bShape, bFlops, func() {
		kernels.ConvForwardBatchedPrepacked(xb, wp, 3, epi, yb, 1, 1, nil, 0)
	})

	// End-to-end serving forward: resnet-tiny at batch 16, the acceptance
	// workload. legacy = fusion knob off (pack-on-the-fly convs, separate
	// BN/ReLU passes); fused = prepacked weights + fused epilogues. The two
	// are bitwise identical (test-enforced); only the clock moves.
	for _, cfg := range []struct {
		name   string
		fusion bool
	}{{"ServingForward/resnet-tiny/legacy", false}, {"ServingForward/resnet-tiny/fused", true}} {
		nn.SetInferFusion(cfg.fusion)
		inf, err := models.ResNet50TinyForServing(32, 8, 16)
		nn.SetInferFusion(true)
		if err != nil {
			panic(err)
		}
		xs := tensor.New(16, 3, 32, 32)
		xs.FillPattern(0.7)
		row(cfg.name, "batch 16, 32x32", 0, func() { inf.Forward(xs) })
	}
	return t, recs
}

// WriteKernelJSON writes kernel benchmark records as a JSON array.
func WriteKernelJSON(path string, recs []BenchRecord) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// nsPerOp times fn (after one warm-up) and returns nanoseconds per call.
func nsPerOp(fn func()) float64 {
	fn()
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 100*time.Millisecond || iters >= 1<<20 {
			return float64(el.Nanoseconds()) / float64(iters)
		}
		iters *= 2
	}
}

// allocsPerOp counts steady-state heap allocations of fn.
func allocsPerOp(fn func()) float64 {
	fn()
	var before, after runtime.MemStats
	const runs = 10
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}
