package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
)

// ObsCalibration runs a small serving fleet under open-loop load, reads the
// flight recorder's per-stage latency decomposition out of the server's
// stats, and prints it next to the performance model's ServeStages
// prediction — the calibration loop that keeps the analytic model honest
// against the measured pipeline.
func ObsCalibration() *Table {
	const (
		size, channels, classes = 8, 3, 4
		maxBatch                = 8
		deadline                = 500 * time.Microsecond
		workers                 = 4
		perWorker               = 150
	)
	model, err := models.SmallCNNForServing(size, channels, classes, maxBatch)
	if err != nil {
		panic(err)
	}
	srv, err := serve.New(model, serve.Config{
		Groups:        []int{1, 2},
		MaxBatch:      maxBatch,
		BatchDeadline: deadline,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			in := make([]float32, srv.InputLen())
			for i := range in {
				in[i] = float32((int64(i)*7+seed)%13) / 13
			}
			out := make([]float32, srv.OutputLen())
			for i := 0; i < perWorker; i++ {
				_ = srv.Predict(in, out)
			}
		}(int64(w))
	}
	wg.Wait()
	st := srv.Stats()

	m := CPUMachine()
	flops, bytes, kernels := ArchForwardCost(model.Arch, int(st.AvgBatch+0.5))
	pred := m.ServeStages(int(st.AvgBatch+0.5), srv.InputLen(), srv.OutputLen(),
		flops, bytes, kernels, deadline.Seconds())
	predFor := map[string]float64{
		"batch_wait": pred.BatchWait,
		"route":      pred.Route,
		"wire":       pred.Wire,
		"compute":    pred.Compute,
		"gather":     pred.Gather,
	}

	t := &Table{
		Title:  "Serving-stage calibration: measured decomposition vs model",
		Header: []string{"stage", "count", "measured p50 (µs)", "measured p90 (µs)", "model (µs)"},
		Note: fmt.Sprintf("smallcnn %dx%dx%d, fleet [1 2], avg batch %.1f, deadline %v; model = cpu-rank ServeStages; queue_wait has no model",
			channels, size, size, st.AvgBatch, deadline),
	}
	for _, sg := range st.Stages {
		mdl := "-"
		if p, ok := predFor[sg.Name]; ok {
			mdl = fmt.Sprintf("%.0f", p*1e6)
		}
		t.Rows = append(t.Rows, []string{
			sg.Name,
			fmt.Sprintf("%d", sg.Count),
			fmt.Sprintf("%d", sg.P50.Microseconds()),
			fmt.Sprintf("%d", sg.P90.Microseconds()),
			mdl,
		})
	}
	return t
}

// ArchForwardCost totals the forward-pass flops, memory bytes, and kernel
// launches of an architecture at the given batch size, using the same
// direct-convolution flop counting as the layer model.
func ArchForwardCost(a *nn.Arch, batch int) (flops, bytes float64, kernels int) {
	if batch < 1 {
		batch = 1
	}
	shapes, err := a.Shapes()
	if err != nil {
		panic(err)
	}
	n := float64(batch)
	for i, s := range a.Specs {
		if s.Kind == nn.KindInput {
			continue
		}
		in := shapes[s.Parents[0]]
		out := shapes[i]
		inElems := n * float64(in.C*in.H*in.W)
		outElems := n * float64(out.C*out.H*out.W)
		switch s.Kind {
		case nn.KindConv:
			k := float64(s.Geom.K)
			flops += 2 * outElems * float64(in.C) * k * k
			bytes += 4 * (inElems + outElems + float64(s.F*in.C*s.Geom.K*s.Geom.K))
		default:
			// BN, ReLU, pools, adds: bandwidth-bound elementwise passes.
			bytes += 4 * (inElems + outElems)
		}
		kernels++
	}
	return flops, bytes, kernels
}
