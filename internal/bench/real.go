package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// RealTimes is a measured layer microbenchmark point from actually running
// the distributed algorithms on in-process ranks (CPU execution).
type RealTimes struct {
	FP, BP float64 // seconds per iteration
}

// MeasureConvReal runs a distributed convolution layer on goroutine ranks
// and measures wall-clock forward and backward time per iteration. Kernel
// multithreading is disabled so ranks are the unit of parallelism, making
// CPU speedups comparable to adding GPUs. The gradient allreduce is
// excluded, matching Section VI-A.
func MeasureConvReal(g dist.Grid, n, c, h, w, f int, geom dist.ConvGeom, iters int) RealTimes {
	old := kernels.SetMaxWorkers(1)
	defer kernels.SetMaxWorkers(old)

	inD := dist.Dist{Grid: g, N: n, C: c, H: h, W: w}
	x := tensor.New(n, c, h, w)
	x.FillPattern(0.3)
	wt := tensor.New(f, c, geom.K, geom.K)
	wt.FillPattern(0.7)
	outD := dist.Dist{Grid: g, N: n, C: f, H: geom.OutSize(h), W: geom.OutSize(w)}
	dy := tensor.New(n, f, outD.H, outD.W)
	dy.FillPattern(0.5)
	xs := core.Scatter(x, inD)
	dys := core.Scatter(dy, outD)

	var mu sync.Mutex
	var res RealTimes
	world := comm.NewWorld(g.Size())
	world.Run(func(cm *comm.Comm) {
		ctx := core.NewCtx(cm, g)
		l := core.NewConv(ctx, inD, f, geom, false)
		copy(l.W.Data(), wt.Data())
		l.DeferAllreduce = true
		// Warmup.
		y := l.Forward(ctx, xs[ctx.Rank])
		_ = l.Backward(ctx, dys[ctx.Rank])
		_ = y
		var fpT, bpT time.Duration
		for it := 0; it < iters; it++ {
			ctx.C.Barrier()
			t0 := time.Now()
			l.Forward(ctx, xs[ctx.Rank])
			ctx.C.Barrier()
			t1 := time.Now()
			l.Backward(ctx, dys[ctx.Rank])
			ctx.C.Barrier()
			t2 := time.Now()
			fpT += t1.Sub(t0)
			bpT += t2.Sub(t1)
		}
		if ctx.Rank == 0 {
			mu.Lock()
			res = RealTimes{
				FP: fpT.Seconds() / float64(iters),
				BP: bpT.Seconds() / float64(iters),
			}
			mu.Unlock()
		}
	})
	return res
}

// ModelCheck reproduces the model-validation finding of Section VI-B3: the
// performance model's predicted speedups track measured speedups and rank
// the parallelization schemes correctly. Measurements execute the real
// distributed algorithms on in-process ranks. Because the ranks time-share
// the host's cores, the wall-clock prediction is the per-rank model time
// multiplied by ceil(ranks/cores): on a single-core host every scheme is
// predicted (and measured) flat, on a many-core host the prediction
// approaches the per-rank speedup.
func ModelCheck() *Table {
	const (
		n, c, h, w, f = 4, 8, 96, 96, 16
		iters         = 3
	)
	geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
	grids := []dist.Grid{
		{PN: 1, PH: 1, PW: 1},
		{PN: 2, PH: 1, PW: 1},
		{PN: 1, PH: 2, PW: 1},
		{PN: 1, PH: 2, PW: 2},
		{PN: 2, PH: 2, PW: 1},
	}
	m := CPUMachine()
	cores := runtime.NumCPU()
	t := &Table{
		Title:  "Model validation: measured (real execution) vs predicted speedup",
		Header: []string{"grid", "measured FP+BP (ms)", "measured speedup", "predicted speedup"},
		Note: fmt.Sprintf("in-process CPU ranks time-sharing %d core(s); prediction = per-rank model time x ceil(ranks/cores)",
			cores),
	}
	var baseMeas, basePred float64
	for i, g := range grids {
		rt := MeasureConvReal(g, n, c, h, w, f, geom, iters)
		meas := rt.FP + rt.BP
		spec := perfmodel.ConvSpec{N: n, C: c, H: h, W: w, F: f, Geom: geom}
		lc := m.ConvLayerCost(spec, g, true)
		rounds := (g.Size() + cores - 1) / cores
		pred := (lc.FP + lc.BPx + lc.BPw) * float64(rounds)
		if i == 0 {
			baseMeas, basePred = meas, pred
		}
		t.Rows = append(t.Rows, []string{
			g.String(),
			fmt.Sprintf("%.2f", meas*1e3),
			fmt.Sprintf("%.2fx", baseMeas/meas),
			fmt.Sprintf("%.2fx", basePred/pred),
		})
	}
	return t
}

// CPUMachine is a rough single-core profile for the pure-Go kernels, used
// only to predict relative speedups in ModelCheck.
func CPUMachine() perfmodel.Machine {
	m := perfmodel.Lassen()
	m.Name = "cpu-rank"
	m.PeakFlops = 5e9
	m.MaxEfficiency = 1
	m.SaturationWork = 1e5
	m.SpatialSaturation = 1
	m.KernelOverhead = 2e-6
	m.MemBW = 10e9
	// In-process "links" are memcpys.
	m.IntraAlpha, m.IntraBeta = 2e-6, 1.0/4e9
	m.InterAlpha, m.InterBeta = 2e-6, 1.0/4e9
	m.GPUsPerNode = 64
	return m
}
