package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Gradient-overlap experiment: real in-process distributed training steps,
// comparing the synchronous backward (every layer blocks on its gradient
// allreduce), the overlapped backward (bucketed non-blocking allreduces
// hidden behind the remaining backward kernels), and the
// communication-free ceiling (gradient reductions skipped entirely — the
// best any overlap scheme could reach).

// overlapModes maps table columns to DistNet gradient modes.
var overlapModes = []struct {
	name string
	mode nn.GradMode
}{
	{"sync", nn.GradSync},
	{"overlap", nn.GradOverlap},
	{"comm-free", nn.GradSkip},
}

// MeasureBackward times the backward pass (including gradient-reduction
// drain) of one full training step of arch on grid g, averaged over iters,
// in the given gradient mode. Kernel multithreading is disabled so ranks
// are the unit of parallelism.
func MeasureBackward(arch *nn.Arch, g dist.Grid, n, iters int, mode nn.GradMode) float64 {
	old := kernels.SetMaxWorkers(1)
	defer kernels.SetMaxWorkers(old)

	in := arch.In
	x := tensor.New(n, in.C, in.H, in.W)
	x.FillPattern(0.3)
	outShape, _ := arch.Output()
	labels := make([]int32, n*outShape.H*outShape.W)
	for i := range labels {
		labels[i] = int32(i % outShape.C)
	}

	var mu sync.Mutex
	var secs float64
	world := comm.NewWorld(g.Size())
	world.Run(func(c *comm.Comm) {
		ctx := core.NewCtx(c, g)
		net, err := nn.NewDistNet(ctx, arch, n, 1)
		if err != nil {
			panic(err)
		}
		net.Grad = mode
		xs := net.ScatterInput(x)
		lbl := nn.ScatterLabels(labels, net.OutputDist())
		// Warmup: pools, proxies, bucket plan.
		for i := 0; i < 2; i++ {
			logits := net.Forward(xs[ctx.Rank])
			_, dl := nn.DistSegLoss(ctx, logits, lbl[ctx.Rank])
			net.Backward(dl)
		}
		var bp time.Duration
		for it := 0; it < iters; it++ {
			logits := net.Forward(xs[ctx.Rank])
			_, dl := nn.DistSegLoss(ctx, logits, lbl[ctx.Rank])
			ctx.C.Barrier()
			t0 := time.Now()
			net.Backward(dl)
			ctx.C.Barrier()
			bp += time.Since(t0)
		}
		if ctx.Rank == 0 {
			mu.Lock()
			secs = bp.Seconds() / float64(iters)
			mu.Unlock()
		}
	})
	return secs
}

// GradStackArch is the overlap experiment's network: a deep, narrow stack
// of biased convolutions. Deep narrow models maximize gradient-reduction
// *count* relative to compute — each layer contributes a small weight
// tensor and a tiny bias, so the synchronous backward pays a latency-bound
// lockstep allreduce per tensor. That latency component is exactly what
// bucketed overlap removes (on the in-process transport it is also the
// dominant removable cost: ranks time-share the host CPU, so transfer
// bandwidth cannot be hidden, only per-message stalls can).
func GradStackArch(size, depth, ch int) *nn.Arch {
	b := nn.NewBuilder("gradstack", nn.Shape{C: 4, H: size, W: size})
	c := b.Conv("c0", b.Last(), ch, dist.ConvGeom{K: 3, S: 1, Pad: 1}, true)
	c = b.ReLU("r0", c)
	for i := 1; i < depth; i++ {
		c = b.Conv(fmt.Sprintf("c%d", i), c, ch, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true)
		c = b.ReLU(fmt.Sprintf("r%d", i), c)
	}
	b.Conv("pred", c, 2, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true)
	return b.MustBuild()
}

// OverlapTable produces the sync vs overlapped vs comm-free backward-time
// comparison across grid shapes (cmd/bench -exp overlap).
func OverlapTable() *Table {
	const (
		size  = 8
		depth = 20
		ch    = 32
		n     = 8
		iters = 10
	)
	arch := GradStackArch(size, depth, ch)
	grids := []dist.Grid{
		{PN: 2, PH: 1, PW: 1},
		{PN: 4, PH: 1, PW: 1},
		{PN: 8, PH: 1, PW: 1},
		{PN: 1, PH: 2, PW: 2},
	}
	t := &Table{
		Title:  "Backward-overlapped gradient allreduce: backward ms/step (gradstack, real execution)",
		Header: []string{"grid", "sync (ms)", "overlap (ms)", "comm-free (ms)", "speedup", "comm hidden"},
		Note: fmt.Sprintf("%d-deep %d-channel stack, input %dx%dx4, batch %d; 'comm hidden' = "+
			"(sync-overlap)/(sync-commfree), the fraction of exposed gradient-reduction time the overlap recovers "+
			"(noisy when sync ~ comm-free)", depth, ch, size, size, n),
	}
	for _, g := range grids {
		var ms [3]float64
		for i, m := range overlapModes {
			ms[i] = MeasureBackward(arch, g, n, iters, m.mode) * 1e3
		}
		hidden := "n/a"
		if ms[0] > ms[2] {
			hidden = fmt.Sprintf("%.0f%%", 100*(ms[0]-ms[1])/(ms[0]-ms[2]))
		}
		t.Rows = append(t.Rows, []string{
			g.String(),
			fmt.Sprintf("%.2f", ms[0]),
			fmt.Sprintf("%.2f", ms[1]),
			fmt.Sprintf("%.2f", ms[2]),
			fmt.Sprintf("%.2fx", ms[0]/ms[1]),
			hidden,
		})
	}
	return t
}
