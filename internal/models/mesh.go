package models

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
)

// meshBlockChannels is the per-block output channel progression of the
// mesh-tangling models, consistent with the layer shapes in Figure 3:
// conv1_1 produces 128 filters and conv6_1 consumes 384 channels and
// produces 128.
var meshBlockChannels = []int{128, 192, 256, 320, 384, 128}

// MeshModel builds a mesh-tangling segmentation model (Section VI): blocks
// of conv-batchnorm-ReLU with stride-2 downsampling at the first convolution
// of each block, a 5x5 first kernel (Figure 3's conv1_1), 3x3 kernels
// elsewhere, and a final 1x1 prediction convolution. The prediction is made
// at the downsampled resolution, framed as per-pixel binary classification
// (tangle / no tangle).
//
// size is the square input extent, channels the input channel count (18
// state variables and mesh-quality metrics), convsPerBlock 3 for the 1K
// model and 5 for the 2K model.
func MeshModel(name string, size, channels, convsPerBlock int, blockChannels []int) *nn.Arch {
	b := nn.NewBuilder(name, nn.Shape{C: channels, H: size, W: size})
	c := b.Last()
	for blk, f := range blockChannels {
		for i := 0; i < convsPerBlock; i++ {
			layer := fmt.Sprintf("conv%d_%d", blk+1, i+1)
			geom := dist.ConvGeom{K: 3, S: 1, Pad: 1}
			if i == 0 {
				geom.S = 2 // downsample at the first conv of each block
				if blk == 0 {
					geom = dist.ConvGeom{K: 5, S: 2, Pad: 2}
				}
			}
			c = b.ConvBNReLU(layer, c, f, geom)
		}
	}
	b.Conv("pred", c, 2, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true)
	return b.MustBuild()
}

// Mesh1K is the 1024x1024 mesh model: six blocks of three convolutions.
func Mesh1K() *nn.Arch {
	return MeshModel("mesh1k", 1024, 18, 3, meshBlockChannels)
}

// Mesh2K is the 2048x2048 mesh model: six blocks of five convolutions. Its
// activations exceed single-GPU memory even at mini-batch size 1, which is
// why spatial parallelism is required (Section VI-B1).
func Mesh2K() *nn.Arch {
	return MeshModel("mesh2k", 2048, 18, 5, meshBlockChannels)
}

// MeshTiny is a scaled-down mesh model for real-execution tests and
// examples: same topology (three blocks, stride-2 first convs, 5x5 first
// kernel, 1x1 predictor), far smaller extents.
func MeshTiny(size int) *nn.Arch {
	return MeshModel("mesh-tiny", size, 4, 2, []int{16, 24, 16})
}

// SmallCNN is a minimal conv-BN-ReLU classifier for the quickstart example:
// two blocks, a 1x1 classifier convolution and global average pooling.
func SmallCNN(size, channels, classes int) *nn.Arch {
	b := nn.NewBuilder("smallcnn", nn.Shape{C: channels, H: size, W: size})
	c := b.ConvBNReLU("conv1", b.Last(), 16, dist.ConvGeom{K: 3, S: 1, Pad: 1})
	c = b.MaxPool("pool1", c, dist.ConvGeom{K: 2, S: 2, Pad: 0})
	c = b.ConvBNReLU("conv2", c, 32, dist.ConvGeom{K: 3, S: 1, Pad: 1})
	c = b.MaxPool("pool2", c, dist.ConvGeom{K: 2, S: 2, Pad: 0})
	c = b.Conv("classifier", c, classes, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true)
	b.GlobalAvgPool("gap", c)
	return b.MustBuild()
}
