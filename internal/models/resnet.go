// Package models defines the network architectures the paper evaluates:
// a fully-convolutional ResNet-50 for ImageNet-1K classification and the
// VGG-style mesh-tangling segmentation models for 1024x1024 and 2048x2048
// inputs (Section VI), plus scaled-down variants for real-execution tests
// and examples.
package models

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
)

// ResNet50 builds a fully-convolutional ResNet-50 ([18], [29] in the
// paper): the classifier is a 1x1 convolution followed by global average
// pooling, which is mathematically identical to pool-then-FC but keeps the
// whole network convolutional so every layer parallelizes spatially.
// inputSize is the (square) spatial extent — 224 for ImageNet.
func ResNet50(inputSize, classes int) *nn.Arch {
	return resNet(inputSize, classes, []int{3, 4, 6, 3}, "resnet50")
}

// resNet builds a bottleneck ResNet with the given blocks per stage, using
// the original (Caffe) layer naming — res3b_branch2a is the first 1x1
// convolution of the second block of stage 3, the layer microbenchmarked in
// Figure 2.
func resNet(inputSize, classes int, stages []int, name string) *nn.Arch {
	b := nn.NewBuilder(name, nn.Shape{C: 3, H: inputSize, W: inputSize})
	c := b.Conv("conv1", b.Last(), 64, dist.ConvGeom{K: 7, S: 2, Pad: 3}, false)
	c = b.BatchNorm("bn_conv1", c)
	c = b.ReLU("conv1_relu", c)
	c = b.MaxPool("pool1", c, dist.ConvGeom{K: 3, S: 2, Pad: 1})

	mid := 64
	out := 256
	for stage, blocks := range stages {
		for blk := 0; blk < blocks; blk++ {
			letter := string(rune('a' + blk))
			prefix := fmt.Sprintf("res%d%s", stage+2, letter)
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			c = bottleneck(b, prefix, c, mid, out, stride, blk == 0)
		}
		mid *= 2
		out *= 2
	}
	c = b.Conv("fc1000", c, classes, dist.ConvGeom{K: 1, S: 1, Pad: 0}, true)
	b.GlobalAvgPool("pool5", c)
	return b.MustBuild()
}

// bottleneck appends one ResNet bottleneck block: 1x1 -> 3x3 -> 1x1 with a
// projection shortcut on the first block of each stage. The stride lives on
// branch2a (original ResNet v1), matching the paper's layer shapes.
func bottleneck(b *nn.Builder, prefix string, in, mid, out, stride int, project bool) int {
	c := b.Conv(prefix+"_branch2a", in, mid, dist.ConvGeom{K: 1, S: stride, Pad: 0}, false)
	c = b.BatchNorm(prefix+"_branch2a_bn", c)
	c = b.ReLU(prefix+"_branch2a_relu", c)
	c = b.Conv(prefix+"_branch2b", c, mid, dist.ConvGeom{K: 3, S: 1, Pad: 1}, false)
	c = b.BatchNorm(prefix+"_branch2b_bn", c)
	c = b.ReLU(prefix+"_branch2b_relu", c)
	c = b.Conv(prefix+"_branch2c", c, out, dist.ConvGeom{K: 1, S: 1, Pad: 0}, false)
	c = b.BatchNorm(prefix+"_branch2c_bn", c)

	shortcut := in
	if project {
		shortcut = b.Conv(prefix+"_branch1", in, out, dist.ConvGeom{K: 1, S: stride, Pad: 0}, false)
		shortcut = b.BatchNorm(prefix+"_branch1_bn", shortcut)
	}
	a := b.Add(prefix, c, shortcut)
	return b.ReLU(prefix+"_relu", a)
}

// ResNet50Tiny is a reduced ResNet (one bottleneck per stage, small input)
// used by real-execution tests: same topology (residual branches, strides,
// projections), two orders of magnitude less compute.
func ResNet50Tiny(inputSize, classes int) *nn.Arch {
	return resNet(inputSize, classes, []int{1, 1, 1, 1}, "resnet-tiny")
}

// LayerSpec describes one convolution for microbenchmarks (Figures 2-3).
type LayerSpec struct {
	Name       string
	C, H, W, F int
	Geom       dist.ConvGeom
}

// Figure 2 and Figure 3 microbenchmark layers, exactly as captioned.
var (
	// Conv1 is ResNet-50 conv1: C=3 H=224 W=224 F=64 K=7 P=3 S=2.
	Conv1 = LayerSpec{Name: "conv1", C: 3, H: 224, W: 224, F: 64, Geom: dist.ConvGeom{K: 7, S: 2, Pad: 3}}
	// Res3bBranch2a is res3b_branch2a: C=512 H=28 W=28 F=128 K=1 P=0 S=1.
	Res3bBranch2a = LayerSpec{Name: "res3b_branch2a", C: 512, H: 28, W: 28, F: 128, Geom: dist.ConvGeom{K: 1, S: 1, Pad: 0}}
	// MeshConv11 is the 2K mesh model's conv1_1: C=18 H=2048 W=2048 F=128 K=5 P=2 S=2.
	MeshConv11 = LayerSpec{Name: "conv1_1", C: 18, H: 2048, W: 2048, F: 128, Geom: dist.ConvGeom{K: 5, S: 2, Pad: 2}}
	// MeshConv61 is conv6_1: C=384 H=64 W=64 F=128 K=3 P=1 S=2.
	MeshConv61 = LayerSpec{Name: "conv6_1", C: 384, H: 64, W: 64, F: 128, Geom: dist.ConvGeom{K: 3, S: 2, Pad: 1}}
)
