package models

import "repro/internal/nn"

// ForServing constructors: each model factory paired with a forward-only
// nn.InferNet builder sized for the serving subsystem's micro-batcher.
// maxBatch is the largest batch the replica's preallocated activation
// buffers accept — internal/serve flushes at or below it. Weights start
// initialized; restore a trained checkpoint with nn.LoadState into
// Params()/Buffers().

// ForServing wraps any architecture in a forward-only inference engine.
func ForServing(arch *nn.Arch, maxBatch int) (*nn.InferNet, error) {
	return nn.NewInferNet(arch, maxBatch)
}

// ResNet50ForServing builds a forward-only ResNet-50 replica.
func ResNet50ForServing(inputSize, classes, maxBatch int) (*nn.InferNet, error) {
	return ForServing(ResNet50(inputSize, classes), maxBatch)
}

// ResNet50TinyForServing builds a forward-only reduced-ResNet replica, the
// serving-test and example workhorse.
func ResNet50TinyForServing(inputSize, classes, maxBatch int) (*nn.InferNet, error) {
	return ForServing(ResNet50Tiny(inputSize, classes), maxBatch)
}

// Mesh1KForServing builds a forward-only 1K mesh-tangling replica.
func Mesh1KForServing(maxBatch int) (*nn.InferNet, error) {
	return ForServing(Mesh1K(), maxBatch)
}

// MeshTinyForServing builds a forward-only scaled-down mesh replica.
func MeshTinyForServing(size, maxBatch int) (*nn.InferNet, error) {
	return ForServing(MeshTiny(size), maxBatch)
}

// SmallCNNForServing builds a forward-only quickstart classifier replica.
func SmallCNNForServing(size, channels, classes, maxBatch int) (*nn.InferNet, error) {
	return ForServing(SmallCNN(size, channels, classes), maxBatch)
}
