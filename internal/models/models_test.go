package models

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestResNet50LayerShapes(t *testing.T) {
	arch := ResNet50(224, 1000)
	shapes, err := arch.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]nn.Shape{}
	specIdx := map[string]int{}
	for i, s := range arch.Specs {
		byName[s.Name] = shapes[i]
		specIdx[s.Name] = i
	}
	// conv1: 224 -> 112, 64 filters (Figure 2 caption).
	if got := byName["conv1"]; got.C != 64 || got.H != 112 || got.W != 112 {
		t.Errorf("conv1 output = %+v, want {64 112 112}", got)
	}
	// res3b_branch2a: input C=512 H=28 W=28, F=128, K=1 S=1 (Figure 2).
	i, ok := specIdx["res3b_branch2a"]
	if !ok {
		t.Fatal("res3b_branch2a not found")
	}
	s := arch.Specs[i]
	in := shapes[s.Parents[0]]
	if in.C != 512 || in.H != 28 || in.W != 28 {
		t.Errorf("res3b_branch2a input = %+v, want {512 28 28}", in)
	}
	if s.F != 128 || s.Geom.K != 1 || s.Geom.S != 1 || s.Geom.Pad != 0 {
		t.Errorf("res3b_branch2a spec = F%d %+v, want F128 K1 S1 P0", s.F, s.Geom)
	}
	// Final stage output 7x7x2048; logits 1000.
	if got := byName["res5c_relu"]; got.C != 2048 || got.H != 7 {
		t.Errorf("res5c output = %+v, want {2048 7 7}", got)
	}
	out := shapes[len(shapes)-1]
	if out.C != 1000 || out.H != 1 || out.W != 1 {
		t.Errorf("output = %+v, want {1000 1 1}", out)
	}
	if arch.NumConvs() != 54 { // 53 ResNet convs + 1x1 classifier
		t.Errorf("NumConvs = %d, want 54", arch.NumConvs())
	}
}

func TestResNet50ParamCount(t *testing.T) {
	arch := ResNet50(224, 1000)
	net, err := nn.NewSeqNet(arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range net.Params() {
		total += len(p.W)
	}
	// Reference ResNet-50 has ~25.56M parameters; our fully-convolutional
	// classifier matches the FC layer's count exactly.
	if total < 25_400_000 || total > 25_700_000 {
		t.Errorf("parameter count = %d, want ~25.56M", total)
	}
}

func TestMeshModelShapes(t *testing.T) {
	for _, tc := range []struct {
		arch     *nn.Arch
		inSize   int
		numConvs int
	}{
		{Mesh1K(), 1024, 6*3 + 1},
		{Mesh2K(), 2048, 6*5 + 1},
	} {
		shapes, err := tc.arch.Shapes()
		if err != nil {
			t.Fatal(err)
		}
		if got := tc.arch.NumConvs(); got != tc.numConvs {
			t.Errorf("%s: NumConvs = %d, want %d", tc.arch.Name, got, tc.numConvs)
		}
		out := shapes[len(shapes)-1]
		want := tc.inSize / 64 // six stride-2 blocks
		if out.C != 2 || out.H != want || out.W != want {
			t.Errorf("%s: output = %+v, want {2 %d %d}", tc.arch.Name, out, want, want)
		}
	}
}

func TestMesh2KConvSpecsMatchFigure3(t *testing.T) {
	arch := Mesh2K()
	shapes, _ := arch.Shapes()
	for i, s := range arch.Specs {
		if s.Name == "conv1_1" {
			in := shapes[s.Parents[0]]
			if in.C != 18 || in.H != 2048 || s.F != 128 || s.Geom.K != 5 || s.Geom.S != 2 || s.Geom.Pad != 2 {
				t.Errorf("conv1_1: in=%+v F=%d geom=%+v, want C18 H2048 F128 K5 S2 P2", in, s.F, s.Geom)
			}
		}
		if s.Name == "conv6_1" {
			in := shapes[s.Parents[0]]
			if in.C != 384 || in.H != 64 || s.F != 128 || s.Geom.K != 3 || s.Geom.S != 2 || s.Geom.Pad != 1 {
				t.Errorf("conv6_1: in=%+v F=%d geom=%+v, want C384 H64 F128 K3 S2 P1", in, s.F, s.Geom)
			}
		}
		_ = i
	}
}

func TestMeshModelMemoryMotivation(t *testing.T) {
	// The paper: a 2K sample is ~288 MiB and the 2K model's activations
	// exceed 16 GB GPU memory even at N=1. Verify our shapes reproduce that
	// arithmetic (activations alone, float32, forward only).
	arch := Mesh2K()
	shapes, _ := arch.Shapes()
	sample := 18 * 2048 * 2048 * 4 // bytes
	if sample != 288*1024*1024 {
		t.Errorf("sample size = %d bytes, want 288 MiB", sample)
	}
	var act int64
	for _, s := range shapes {
		act += int64(s.C) * int64(s.H) * int64(s.W) * 4
	}
	// Training keeps activations for backpropagation and materializes error
	// signals of the same shapes, so the working set is ~2x the forward
	// activations — past 16 GiB at N=1, which is the paper's motivation for
	// spatial parallelism on this model.
	if 2*act < 16*1024*1024*1024 {
		t.Errorf("2K model training working set = %.1f GiB, expected to exceed 16 GiB", float64(2*act)/(1<<30))
	}
	if act < 8*1024*1024*1024 {
		t.Errorf("2K model activations = %.1f GiB, expected to exceed 8 GiB", float64(act)/(1<<30))
	}
}

func TestSmallCNNAndTinyModels(t *testing.T) {
	for _, arch := range []*nn.Arch{SmallCNN(16, 3, 10), MeshTiny(32), ResNet50Tiny(64, 10)} {
		if _, err := arch.Shapes(); err != nil {
			t.Errorf("%s: %v", arch.Name, err)
		}
		if _, err := nn.NewSeqNet(arch, 1); err != nil {
			t.Errorf("%s: %v", arch.Name, err)
		}
	}
}

// TestMeshTinyDistTrainingMatchesSeq trains the tiny mesh model for two SGD
// steps sequentially and distributed (hybrid 2x2 sample/spatial) and checks
// the losses track — the end-to-end integration test across models, nn,
// core, comm, dist, kernels and tensor.
func TestMeshTinyDistTrainingMatchesSeq(t *testing.T) {
	arch := MeshTiny(32)
	outShape, _ := arch.Output()
	n := 4
	x := tensor.New(n, 4, 32, 32)
	x.FillRandN(1, 1)
	labels := make([]int32, n*outShape.H*outShape.W)
	rng := rand.New(rand.NewSource(2))
	for i := range labels {
		labels[i] = int32(rng.Intn(2))
	}

	seq, err := nn.NewSeqNet(arch, 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewSGD(0.05, 0.9, 0)
	var seqLosses []float64
	for it := 0; it < 2; it++ {
		logits := seq.Forward(x)
		loss, dl := nn.SegLoss(logits, labels)
		seqLosses = append(seqLosses, loss)
		seq.Backward(dl)
		opt.Step(seq.Params())
	}

	g := dist.Grid{PN: 2, PH: 2, PW: 1}
	losses := make([][]float64, g.Size())
	var mu sync.Mutex
	w := comm.NewWorld(g.Size())
	w.Run(func(c *comm.Comm) {
		ctx := core.NewCtx(c, g)
		net, err := nn.NewDistNet(ctx, arch, n, 11)
		if err != nil {
			t.Error(err)
			return
		}
		o := nn.NewSGD(0.05, 0.9, 0)
		var ls []float64
		xs := net.ScatterInput(x)
		lbl := nn.ScatterLabels(labels, net.OutputDist())
		for it := 0; it < 2; it++ {
			logits := net.Forward(xs[ctx.Rank])
			loss, dl := nn.DistSegLoss(ctx, logits, lbl[ctx.Rank])
			ls = append(ls, loss)
			net.Backward(dl)
			o.Step(net.Params())
		}
		mu.Lock()
		losses[ctx.Rank] = ls
		mu.Unlock()
	})
	for r := 0; r < g.Size(); r++ {
		for it := range seqLosses {
			d := losses[r][it] - seqLosses[it]
			if d > 1e-4 || d < -1e-4 {
				t.Errorf("rank %d iter %d: loss %g vs sequential %g", r, it, losses[r][it], seqLosses[it])
			}
		}
	}
}

func TestForServingFactories(t *testing.T) {
	for _, tc := range []struct {
		name string
		make func() (*nn.InferNet, error)
	}{
		{"resnet-tiny", func() (*nn.InferNet, error) { return ResNet50TinyForServing(16, 4, 3) }},
		{"mesh-tiny", func() (*nn.InferNet, error) { return MeshTinyForServing(16, 3) }},
		{"smallcnn", func() (*nn.InferNet, error) { return SmallCNNForServing(16, 3, 5, 3) }},
	} {
		inf, err := tc.make()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		in := inf.InShape()
		x := tensor.New(3, in.C, in.H, in.W)
		x.FillPattern(0.2)
		y := inf.Forward(x)
		if y.Dim(0) != 3 {
			t.Errorf("%s: forward batch dim %d, want 3", tc.name, y.Dim(0))
		}
	}
}
