package data

import (
	"math"
	"testing"
)

func TestMeshBatchShapesAndDeterminism(t *testing.T) {
	cfg := MeshConfig{Size: 64, Channels: 6, OutSize: 8}
	x1, l1 := MeshBatch(cfg, 3, 42)
	x2, l2 := MeshBatch(cfg, 3, 42)
	if s := x1.Shape(); s[0] != 3 || s[1] != 6 || s[2] != 64 || s[3] != 64 {
		t.Fatalf("mesh batch shape = %v", s)
	}
	if len(l1) != 3*8*8 {
		t.Fatalf("label count = %d, want %d", len(l1), 3*8*8)
	}
	if x1.MaxAbsDiff(x2) != 0 {
		t.Fatal("mesh generation not deterministic in seed")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("labels not deterministic")
		}
	}
	x3, _ := MeshBatch(cfg, 3, 43)
	if x1.MaxAbsDiff(x3) == 0 {
		t.Fatal("different seeds should give different data")
	}
}

func TestMeshBatchLabelsNonTrivial(t *testing.T) {
	// The tangling mask must have both classes present overall (otherwise
	// the segmentation task is degenerate).
	cfg := MeshConfig{Size: 128, Channels: 4, OutSize: 32}
	_, labels := MeshBatch(cfg, 8, 7)
	frac := TangleFraction(labels)
	if frac <= 0.005 || frac >= 0.8 {
		t.Fatalf("tangle fraction = %.3f, want a non-degenerate mix", frac)
	}
}

func TestMeshBatchValuesBounded(t *testing.T) {
	cfg := MeshConfig{Size: 32, Channels: 8, OutSize: 8}
	x, _ := MeshBatch(cfg, 2, 5)
	for _, v := range x.Data() {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 50 {
			t.Fatalf("implausible field value %v", v)
		}
	}
}

func TestClassBatch(t *testing.T) {
	x, labels := ClassBatch(16, 3, 5, 10, 9)
	if s := x.Shape(); s[0] != 10 || s[1] != 3 || s[2] != 16 || s[3] != 16 {
		t.Fatalf("class batch shape = %v", s)
	}
	if len(labels) != 10 {
		t.Fatalf("label count = %d", len(labels))
	}
	seen := map[int]bool{}
	for _, l := range labels {
		if l < 0 || l >= 5 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Fatal("labels should span multiple classes in a batch of 10")
	}
}

func TestTangleFractionEdgeCases(t *testing.T) {
	if TangleFraction(nil) != 0 {
		t.Fatal("empty labels")
	}
	if TangleFraction([]int32{1, 1, 0, 0}) != 0.5 {
		t.Fatal("fraction wrong")
	}
}
