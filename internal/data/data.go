// Package data generates the synthetic datasets of the reproduction: a
// mesh-tangling dataset standing in for the paper's hydrodynamics
// simulation output (the paper itself uses synthetic data for its
// performance benchmarks), and a structured image classification set for
// the training-loop demonstrations.
package data

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// MeshConfig describes a synthetic mesh-tangling sample: Channels state
// fields of Size x Size, labeled at the model's output resolution
// OutSize x OutSize with a per-pixel tangle/no-tangle mask.
type MeshConfig struct {
	Size     int
	Channels int
	OutSize  int
}

// MeshBatch generates n samples. The channels emulate hydrodynamics state:
// advected Gaussian density blobs, a shear/vortex velocity field, and
// mesh-quality metrics; the tangling label is a threshold on a smooth
// distortion field, so it is learnable but not trivial. Deterministic in
// seed.
func MeshBatch(cfg MeshConfig, n int, seed int64) (*tensor.Tensor, []int32) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, cfg.Channels, cfg.Size, cfg.Size)
	labels := make([]int32, n*cfg.OutSize*cfg.OutSize)
	for s := 0; s < n; s++ {
		generateMeshSample(cfg, rng, x, s, labels[s*cfg.OutSize*cfg.OutSize:(s+1)*cfg.OutSize*cfg.OutSize])
	}
	return x, labels
}

func generateMeshSample(cfg MeshConfig, rng *rand.Rand, x *tensor.Tensor, s int, label []int32) {
	size := cfg.Size
	// A few random vortices drive the distortion field.
	type vortex struct{ cx, cy, strength, radius float64 }
	vs := make([]vortex, 3+rng.Intn(3))
	for i := range vs {
		vs[i] = vortex{
			cx:       rng.Float64() * float64(size),
			cy:       rng.Float64() * float64(size),
			strength: (rng.Float64()*2 - 1) * 3,
			radius:   (0.05 + 0.2*rng.Float64()) * float64(size),
		}
	}
	phase := rng.Float64() * 2 * math.Pi
	freq := 2 + rng.Float64()*6

	distortion := func(px, py float64) float64 {
		d := 0.0
		for _, v := range vs {
			dx, dy := px-v.cx, py-v.cy
			r2 := (dx*dx + dy*dy) / (v.radius * v.radius)
			d += v.strength * math.Exp(-r2)
		}
		return d
	}

	for c := 0; c < cfg.Channels; c++ {
		cphase := phase + float64(c)*0.7
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				px, py := float64(j), float64(i)
				d := distortion(px, py)
				var v float64
				switch c % 4 {
				case 0: // density-like: blobs plus background gradient
					v = d + 0.2*py/float64(size)
				case 1: // velocity-like: shear + vortex derivative
					v = math.Sin(cphase+freq*px/float64(size)*2*math.Pi) + 0.5*d
				case 2: // energy-like
					v = d*d - 0.3
				default: // mesh-quality metric: sharpened distortion
					v = math.Tanh(2 * d)
				}
				x.Set4(float32(v), s, c, i, j)
			}
		}
	}

	// Label: tangling where the distortion magnitude exceeds a threshold at
	// the (coarse) output resolution.
	scale := float64(size) / float64(cfg.OutSize)
	for i := 0; i < cfg.OutSize; i++ {
		for j := 0; j < cfg.OutSize; j++ {
			d := distortion((float64(j)+0.5)*scale, (float64(i)+0.5)*scale)
			if math.Abs(d) > 1.2 {
				label[i*cfg.OutSize+j] = 1
			}
		}
	}
}

// ClassBatch generates n labeled images of size x size with channels color
// planes: each class is an oriented grating with a class-specific angle and
// frequency plus noise, so a small CNN can separate classes quickly.
func ClassBatch(size, channels, classes, n int, seed int64) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, channels, size, size)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		cls := rng.Intn(classes)
		labels[s] = cls
		angle := float64(cls) * math.Pi / float64(classes)
		freq := 2 + float64(cls%3)
		jx := rng.Float64() * 2 * math.Pi
		for c := 0; c < channels; c++ {
			for i := 0; i < size; i++ {
				for j := 0; j < size; j++ {
					u := (float64(j)*math.Cos(angle) + float64(i)*math.Sin(angle)) / float64(size)
					v := math.Sin(jx+freq*2*math.Pi*u) + 0.3*rng.NormFloat64()
					x.Set4(float32(v), s, c, i, j)
				}
			}
		}
	}
	return x, labels
}

// TangleFraction returns the fraction of positive pixels, a sanity metric
// for generated mesh labels.
func TangleFraction(labels []int32) float64 {
	if len(labels) == 0 {
		return 0
	}
	n := 0
	for _, l := range labels {
		if l == 1 {
			n++
		}
	}
	return float64(n) / float64(len(labels))
}
